#ifndef XQP_OPT_CONST_FOLD_H_
#define XQP_OPT_CONST_FOLD_H_

#include <optional>

#include "exec/item.h"
#include "query/expr.h"

namespace xqp {

/// Structural compile-time evaluation of one pure-literal node: arithmetic,
/// unary +/-, and value/general comparisons whose operands are all
/// literals. Unlike the property-driven FoldConstant rule this needs no
/// analysis pass and no dynamic context, so the bytecode compiler reuses it
/// at lowering even for unoptimized plans. Returns nullopt when `e` has a
/// different shape or when evaluation errors (a dead branch must keep its
/// runtime error).
std::optional<Sequence> TryFoldLiteralNode(const Expr& e);

namespace opt_internal {

struct RuleContext;

/// Rewrite-rule wrapper: replaces a foldable node with its literal result.
/// Counted as "const_fold" (process-wide: rewrite.const_fold).
void ConstFoldRewrite(ExprPtr& e, RuleContext* ctx);

}  // namespace opt_internal

}  // namespace xqp

#endif  // XQP_OPT_CONST_FOLD_H_
