#ifndef XQP_OPT_ACCESS_PATH_H_
#define XQP_OPT_ACCESS_PATH_H_

#include <functional>
#include <memory>
#include <optional>
#include <string>

#include "exec/dynamic_context.h"
#include "index/index_planner.h"
#include "opt/cost.h"
#include "query/expr.h"

namespace xqp {

/// Outcome of access-path selection for one doc()-anchored chain.
struct AccessPathDecision {
  AccessPath chosen = AccessPath::kNav;
  /// True when a non-auto override (EngineOptions::force_access_path /
  /// XQP_ACCESS_PATH) made the choice instead of the cost model.
  bool forced = false;
  CardEstimate card;
  AccessPathCosts costs;
};

/// Picks the strategy for `q`. A forced (non-auto) strategy wins
/// unconditionally — the executor degrades inapplicable forces to
/// navigation, so results stay bit-identical. Under kAuto the cheapest
/// applicable candidate wins; candidates are compared in the order nav,
/// sjoin, twig, index with `<=`, so exact ties go to the most index-backed
/// strategy.
AccessPathDecision ChooseAccessPath(const DocumentIndexes& idx,
                                    const IndexQuery& q, AccessPath force);

/// Execution hook shared by the lazy iterator tree, the eager interpreter,
/// and (via bailout thunks) the VM: plans `e`, fetches the document's
/// indexes through ctx->provider, chooses an access path (honoring
/// ctx->force_access_path), and runs the chosen executor. Returns nullopt
/// (not an error) whenever any stage declines — the normal navigation plan
/// then reproduces today's results and errors bit-identically. Resource
/// trips and injected faults from governed index builds propagate. Charges
/// the materialized answer to ctx->governor.
Result<std::optional<Sequence>> TryExecuteAccessPath(const PathExpr* e,
                                                     DynamicContext* ctx);

/// Compile-time probe of already-built indexes: returns the cached
/// DocumentIndexes for a URI or null, and must never build — compile-time
/// annotation must not charge index construction to a governor or trip
/// injected build faults (those belong to the first executing query).
using IndexPeek =
    std::function<std::shared_ptr<const DocumentIndexes>(const std::string&)>;

/// Walks `root` and annotates every index-candidate PathExpr with the
/// chosen access path and cardinality estimate
/// (PathExpr::access_path/access_est — EXPLAIN-only; execution re-derives
/// the decision against live indexes). Paths whose document has no cached
/// indexes yet are reset to kAuto/0.
void AnnotateAccessPaths(Expr* root, const IndexPeek& peek, AccessPath force);

}  // namespace xqp

#endif  // XQP_OPT_ACCESS_PATH_H_
