#ifndef XQP_OPT_REWRITER_H_
#define XQP_OPT_REWRITER_H_

#include <map>
#include <string>

#include "base/status.h"
#include "query/static_context.h"

namespace xqp {

/// Which rewrite rules run. Each flag corresponds to one of the paper's
/// named logical rewritings; the ablation benchmark (E7) toggles them
/// individually.
struct RewriterOptions {
  bool const_fold = true;              // Literal-operand arithmetic/comparison
                                       // folding (opt/const_fold.cc; shared
                                       // with the bytecode compiler).
  bool constant_folding = true;
  bool boolean_simplification = true;
  bool let_folding = true;             // LET clause folding + dead-let removal.
  bool function_inlining = true;
  bool flwor_unnesting = true;         // FOR-clause and RETURN-clause unnesting.
  bool for_to_path = true;             // FOR clause minimization.
  bool ddo_elision = true;             // Doc-order/dup-elim elimination.
  bool cse = true;                     // Common subexpression factorization.
  bool index_paths = true;             // Mark index-answerable path subtrees.
  int max_passes = 4;
  /// Inline only functions whose body has at most this many expression
  /// nodes (recursive functions are never inlined).
  int inline_size_limit = 200;

  static RewriterOptions AllOff() {
    RewriterOptions o;
    o.const_fold = o.constant_folding = o.boolean_simplification =
        o.let_folding = o.function_inlining = o.flwor_unnesting =
            o.for_to_path = o.ddo_elision = o.cse = o.index_paths = false;
    return o;
  }
};

/// Rule-application counters, keyed by rule name (for tests and EXPLAIN).
using RewriteStats = std::map<std::string, int>;

/// Optimizes the module in place: repeatedly applies the enabled rules to
/// the main body, every function body and every global initializer until a
/// fixpoint or max_passes. The paper's optimizer shape: "a library of
/// rewriting rules and a hard-coded strategy"; no cost model.
Result<RewriteStats> OptimizeModule(ParsedModule* module,
                                    const RewriterOptions& options = {});

namespace opt_internal {

/// One rewrite pass context; shared by the rule translation units.
struct RuleContext {
  ParsedModule* module;
  const RewriterOptions* options;
  RewriteStats* stats;
  /// Slot counter of the frame being rewritten (extended when rules create
  /// new bindings).
  int* next_slot;
  bool changed = false;

  /// Records one application of `rule`: bumps the per-compilation stats,
  /// marks the pass as having changed the tree, and (when the global
  /// metrics registry collects) bumps the process-wide "rewrite.<rule>"
  /// fire counter.
  void Count(const char* rule);
};

// Rule entry points (one translation unit per family).
Status ApplyCoreRules(ExprPtr& e, RuleContext* ctx);    // rules_core.cc
Status ApplyFlworRules(ExprPtr& e, RuleContext* ctx);   // rules_flwor.cc
Status ApplyPathRules(ExprPtr& e, RuleContext* ctx);    // rules_path.cc

}  // namespace opt_internal

}  // namespace xqp

#endif  // XQP_OPT_REWRITER_H_
