#ifndef XQP_OPT_STATIC_TYPES_H_
#define XQP_OPT_STATIC_TYPES_H_

#include <string>

#include "base/status.h"
#include "query/expr.h"
#include "query/static_context.h"

namespace xqp {

/// A conservative static type: item-kind lattice x occurrence range. This
/// is the compact core of the paper's "Xquery type system" section, scoped
/// to the untyped data model: enough to implement the optional *static
/// typing feature* ("goal 1: detect statically errors in the queries";
/// "goal 2: infer the type of the result").
struct StaticType {
  enum class Kind : uint8_t {
    kNone,      // empty-sequence()
    kAnyItem,   // item()
    kNode,      // node() (typed value: untypedAtomic)
    kAnyAtomic,
    kNumeric,   // integer | decimal | double
    kInteger,
    kDecimal,
    kDouble,
    kString,
    kUntyped,   // xdt:untypedAtomic
    kBoolean,
    kQName,
    kAnyUri,
  };
  enum class Occ : uint8_t { kEmpty, kOne, kOpt, kStar, kPlus };

  Kind kind = Kind::kAnyItem;
  Occ occ = Occ::kStar;

  static StaticType One(Kind k) { return StaticType{k, Occ::kOne}; }
  static StaticType Star(Kind k) { return StaticType{k, Occ::kStar}; }
  static StaticType Empty() { return StaticType{Kind::kNone, Occ::kEmpty}; }

  /// Least upper bound (for conditionals/sequences).
  static StaticType Union(const StaticType& a, const StaticType& b);

  /// True when a value of this type can be used as a numeric operand
  /// (numerics, untyped — castable — and anything unknown).
  bool MaybeNumeric() const;
  /// True when values of the two types might compare under a *value*
  /// comparison without a type error.
  static bool MaybeValueComparable(const StaticType& a, const StaticType& b);
  /// True when this type's items might be nodes.
  bool MaybeNode() const;
  /// True when the sequence is certainly non-empty.
  bool DefinitelyNonEmpty() const {
    return occ == Occ::kOne || occ == Occ::kPlus;
  }

  std::string ToString() const;
};

/// Infers the static type of `e`. Never fails; unknown constructs widen to
/// item()*.
StaticType InferStaticType(const Expr* e, const ParsedModule* module);

/// The optional static typing feature: walks the whole module and reports a
/// static error for expressions guaranteed (or, per the XQuery static
/// rules, required) to fail at runtime:
///  - arithmetic with an operand that can never be numeric,
///  - value comparisons between statically incomparable types
///    (the paper's `<a>42</a> eq 42` rule: untyped vs. numeric is an error
///    under static typing),
///  - axis steps applied to expressions that can never yield nodes,
///  - user-function arguments disjoint from the declared parameter type.
/// Off by default (it is an *optional* feature and is strict by design);
/// enable via XQueryEngine::CompileOptions::static_typing.
Status StaticTypeCheck(const ParsedModule* module);

}  // namespace xqp

#endif  // XQP_OPT_STATIC_TYPES_H_
