#ifndef XQP_OPT_PROPERTIES_H_
#define XQP_OPT_PROPERTIES_H_

#include <vector>

#include "query/expr.h"
#include "query/static_context.h"

namespace xqp {

/// Bottom-up dataflow analysis filling Expr::props — the paper's
/// "Xquery expression analysis" slide: doc-order/distinctness guarantees,
/// node creation, error potential, context sensitivity, constancy.
/// Must be re-run after structural rewrites (the rewriter does).
void AnalyzeExpr(Expr* e, const ParsedModule* module);

/// Counts references to frame slot `slot` within `e` (locals only).
/// `in_loop` is set when any use sits under a for-loop/quantifier/path-step
/// body relative to `e` (the paper's "used as part of a loop" test).
int CountVarUses(const Expr* e, int slot, bool* in_loop);

/// Replaces every local VarRef to `slot` in `e` with a clone of
/// `replacement`. Returns the number of substitutions.
int SubstituteVar(Expr* e, int slot, const Expr& replacement);

/// Collects every local frame slot bound by binding constructs within `e`
/// (FLWOR for/let, quantifiers, typeswitch cases).
void CollectBoundSlots(const Expr* e, std::vector<int>* slots);

/// Collects every local frame slot referenced by VarRefs within `e`.
void CollectUsedSlots(const Expr* e, std::vector<int>* slots);

/// The ddo lattice: given the order/distinct/non-nesting guarantees of a
/// path's input and the step's axis, derives the guarantees of the raw
/// (unsorted) step output. Implements the paper's "semantic conditions":
///   $doc/a/b/c    — ordered, distinct (no ddo needed)
///   $doc/a//b     — ordered, distinct
///   $doc//a/b     — NOT ordered, but distinct (dedup elidable)
///   $doc//a//b    — nothing guaranteed.
void PathStructuralFlags(const ExprProps& lhs, Axis axis, bool* ordered,
                         bool* distinct, bool* no_two_nested);

/// The StepExpr underlying `e`, looking through filter predicates; nullptr
/// when `e` is not a (filtered) step.
const StepExpr* UnderlyingStep(const Expr* e);

}  // namespace xqp

#endif  // XQP_OPT_PROPERTIES_H_
