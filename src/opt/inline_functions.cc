#include "opt/inline_functions.h"

#include <unordered_map>
#include <utility>

#include "query/expr.h"

namespace xqp {
namespace opt_internal {

namespace {

size_t CountNodes(const Expr* e) {
  size_t n = 1;
  for (size_t i = 0; i < e->NumChildren(); ++i) n += CountNodes(e->child(i));
  return n;
}

/// Function inlining: non-recursive user functions below the size limit
/// expand at the call site as let-bound parameters + a slot-remapped body
/// clone (the paper's caveats about namespaces and implicit operations are
/// satisfied: names were resolved at parse time and argument types are
/// checked by the generated lets... the engine checks them dynamically).
class Inliner {
 public:
  Inliner(const ParsedModule& module, int size_limit, int* next_slot)
      : module_(module), size_limit_(size_limit), next_slot_(next_slot) {}

  int inlined() const { return inlined_; }

  Status Run(ExprPtr& e) {
    for (size_t i = 0; i < e->NumChildren(); ++i) {
      XQP_RETURN_NOT_OK(Run(e->child_slot(i)));
    }
    if (e->kind() != ExprKind::kFunctionCall) return Status::OK();
    auto* call = static_cast<FunctionCallExpr*>(e.get());
    if (call->user_index < 0) return Status::OK();
    const UserFunction& fn = module_.functions[call->user_index];
    if (fn.body == nullptr || fn.recursive) return Status::OK();
    if (CountNodes(fn.body.get()) > static_cast<size_t>(size_limit_)) {
      return Status::OK();
    }

    // Clone and remap the body into the caller's frame.
    ExprPtr body = fn.body->Clone();
    std::unordered_map<int, int> remap;
    for (size_t i = 0; i < fn.param_slots.size(); ++i) {
      remap[fn.param_slots[i]] = (*next_slot_)++;
    }
    CollectAndRemapBindings(body.get(), &remap);
    RemapVarRefs(body.get(), remap);

    if (call->NumChildren() == 0) {
      e = std::move(body);
    } else {
      auto flwor = std::make_unique<FlworExpr>();
      for (size_t i = 0; i < fn.params.size(); ++i) {
        FlworExpr::Clause clause;
        clause.type = FlworExpr::Clause::Type::kLet;
        clause.var = fn.params[i];
        clause.var_slot = remap[fn.param_slots[i]];
        flwor->clauses.push_back(clause);
        ExprPtr arg = call->TakeChild(i);
        // Declared parameter types keep their dynamic check as treat-as.
        const SequenceType& t = fn.param_types[i];
        bool is_any = !t.empty_sequence &&
                      t.item.kind == ItemTypeTest::Kind::kItem &&
                      t.occurrence == Occurrence::kStar;
        if (!is_any) {
          arg = std::make_unique<TreatExpr>(std::move(arg), t);
        }
        flwor->AddChild(std::move(arg));
      }
      flwor->AddChild(std::move(body));
      e = std::move(flwor);
    }
    ++inlined_;
    return Status::OK();
  }

 private:
  void CollectAndRemapBindings(Expr* e, std::unordered_map<int, int>* remap) {
    switch (e->kind()) {
      case ExprKind::kFlwor: {
        auto* flwor = static_cast<FlworExpr*>(e);
        for (auto& c : flwor->clauses) {
          if (c.var_slot >= 0) {
            int fresh = (*next_slot_)++;
            (*remap)[c.var_slot] = fresh;
            c.var_slot = fresh;
          }
          if (c.pos_slot >= 0) {
            int fresh = (*next_slot_)++;
            (*remap)[c.pos_slot] = fresh;
            c.pos_slot = fresh;
          }
        }
        break;
      }
      case ExprKind::kQuantified: {
        auto* q = static_cast<QuantifiedExpr*>(e);
        for (auto& b : q->bindings) {
          if (b.var_slot >= 0) {
            int fresh = (*next_slot_)++;
            (*remap)[b.var_slot] = fresh;
            b.var_slot = fresh;
          }
        }
        break;
      }
      case ExprKind::kTypeswitch: {
        auto* ts = static_cast<TypeswitchExpr*>(e);
        for (auto& c : ts->cases) {
          if (c.var_slot >= 0) {
            int fresh = (*next_slot_)++;
            (*remap)[c.var_slot] = fresh;
            c.var_slot = fresh;
          }
        }
        if (ts->default_var_slot >= 0) {
          int fresh = (*next_slot_)++;
          (*remap)[ts->default_var_slot] = fresh;
          ts->default_var_slot = fresh;
        }
        break;
      }
      default:
        break;
    }
    for (size_t i = 0; i < e->NumChildren(); ++i) {
      CollectAndRemapBindings(e->child(i), remap);
    }
  }

  void RemapVarRefs(Expr* e, const std::unordered_map<int, int>& remap) {
    if (e->kind() == ExprKind::kVarRef) {
      auto* var = static_cast<VarRefExpr*>(e);
      if (!var->is_global) {
        auto it = remap.find(var->slot);
        if (it != remap.end()) var->slot = it->second;
      }
    }
    for (size_t i = 0; i < e->NumChildren(); ++i) {
      RemapVarRefs(e->child(i), remap);
    }
  }

  const ParsedModule& module_;
  int size_limit_;
  int* next_slot_;
  int inlined_ = 0;
};

}  // namespace

Result<int> InlineFunctionCalls(ExprPtr& e, const ParsedModule& module,
                                int inline_size_limit, int* next_slot) {
  Inliner inliner(module, inline_size_limit, next_slot);
  XQP_RETURN_NOT_OK(inliner.Run(e));
  return inliner.inlined();
}

}  // namespace opt_internal

Result<int> InlineSmallFunctions(ParsedModule* module, int inline_size_limit) {
  if (module->functions.empty() || module->body == nullptr) return 0;
  int total = 0;
  // A non-recursive call graph is a DAG, so a chain exposes at most one
  // new layer of calls per pass and |functions| passes flatten any chain;
  // the bound makes that explicit rather than trusting the recursion
  // analysis with an unbounded loop.
  int max_rounds = static_cast<int>(module->functions.size()) + 1;
  for (int round = 0; round < max_rounds; ++round) {
    XQP_ASSIGN_OR_RETURN(
        int inlined,
        opt_internal::InlineFunctionCalls(module->body, *module,
                                          inline_size_limit,
                                          &module->num_slots));
    if (inlined == 0) break;
    total += inlined;
  }
  return total;
}

}  // namespace xqp
