#include "opt/static_types.h"

#include "exec/functions.h"

namespace xqp {

namespace {

using Kind = StaticType::Kind;
using Occ = StaticType::Occ;

bool IsNumericKind(Kind k) {
  return k == Kind::kNumeric || k == Kind::kInteger || k == Kind::kDecimal ||
         k == Kind::kDouble;
}

bool IsStringLikeKind(Kind k) {
  return k == Kind::kString || k == Kind::kUntyped || k == Kind::kAnyUri;
}

Kind KindLub(Kind a, Kind b) {
  if (a == b) return a;
  if (a == Kind::kNone) return b;
  if (b == Kind::kNone) return a;
  if (IsNumericKind(a) && IsNumericKind(b)) return Kind::kNumeric;
  if ((a == Kind::kNode && b == Kind::kNode)) return Kind::kNode;
  bool a_atomic = a != Kind::kNode && a != Kind::kAnyItem;
  bool b_atomic = b != Kind::kNode && b != Kind::kAnyItem;
  if (a_atomic && b_atomic) return Kind::kAnyAtomic;
  return Kind::kAnyItem;
}

Occ OccUnion(Occ a, Occ b) {
  if (a == b) return a;
  auto can_be_empty = [](Occ o) {
    return o == Occ::kEmpty || o == Occ::kOpt || o == Occ::kStar;
  };
  auto can_be_many = [](Occ o) { return o == Occ::kStar || o == Occ::kPlus; };
  bool empty_ok = can_be_empty(a) || can_be_empty(b);
  bool many_ok = can_be_many(a) || can_be_many(b);
  if (empty_ok && many_ok) return Occ::kStar;
  if (empty_ok) return Occ::kOpt;
  if (many_ok) return Occ::kPlus;
  return Occ::kOne;
}

/// Occurrence of a concatenation.
Occ OccConcat(Occ a, Occ b) {
  if (a == Occ::kEmpty) return b;
  if (b == Occ::kEmpty) return a;
  bool a_some = a == Occ::kOne || a == Occ::kPlus;
  bool b_some = b == Occ::kOne || b == Occ::kPlus;
  if (a_some || b_some) return Occ::kPlus;
  return Occ::kStar;
}

Kind FromXsType(XsType t) {
  switch (t) {
    case XsType::kUntypedAtomic:
      return Kind::kUntyped;
    case XsType::kString:
      return Kind::kString;
    case XsType::kAnyUri:
      return Kind::kAnyUri;
    case XsType::kBoolean:
      return Kind::kBoolean;
    case XsType::kInteger:
      return Kind::kInteger;
    case XsType::kDecimal:
      return Kind::kDecimal;
    case XsType::kDouble:
      return Kind::kDouble;
    case XsType::kQName:
      return Kind::kQName;
  }
  return Kind::kAnyAtomic;
}

StaticType FromSequenceType(const SequenceType& t) {
  StaticType out;
  if (t.empty_sequence) return StaticType::Empty();
  switch (t.item.kind) {
    case ItemTypeTest::Kind::kItem:
      out.kind = Kind::kAnyItem;
      break;
    case ItemTypeTest::Kind::kAtomic:
      out.kind = FromXsType(t.item.atomic);
      break;
    default:
      out.kind = Kind::kNode;
      break;
  }
  switch (t.occurrence) {
    case Occurrence::kOne:
      out.occ = Occ::kOne;
      break;
    case Occurrence::kOptional:
      out.occ = Occ::kOpt;
      break;
    case Occurrence::kStar:
      out.occ = Occ::kStar;
      break;
    case Occurrence::kPlus:
      out.occ = Occ::kPlus;
      break;
  }
  return out;
}

/// Static result types for the common builtins (the paper's goal 2:
/// "infer the type of the result of valid queries").
StaticType BuiltinResultType(Builtin id) {
  switch (id) {
    case Builtin::kCount:
    case Builtin::kStringLength:
      return StaticType::One(Kind::kInteger);
    case Builtin::kEmpty:
    case Builtin::kExists:
    case Builtin::kNot:
    case Builtin::kTrue:
    case Builtin::kFalse:
    case Builtin::kBoolean:
    case Builtin::kContains:
    case Builtin::kStartsWith:
    case Builtin::kEndsWith:
    case Builtin::kDeepEqual:
      return StaticType::One(Kind::kBoolean);
    case Builtin::kString:
    case Builtin::kConcat:
    case Builtin::kSubstring:
    case Builtin::kSubstringBefore:
    case Builtin::kSubstringAfter:
    case Builtin::kNormalizeSpace:
    case Builtin::kUpperCase:
    case Builtin::kLowerCase:
    case Builtin::kTranslate:
    case Builtin::kStringJoin:
    case Builtin::kName:
    case Builtin::kLocalName:
    case Builtin::kNamespaceUri:
    case Builtin::kNodeKind:
      return StaticType::One(Kind::kString);
    case Builtin::kNumber:
      return StaticType::One(Kind::kDouble);
    case Builtin::kPosition:
    case Builtin::kLast:
      return StaticType::One(Kind::kInteger);
    case Builtin::kSum:
      return StaticType::One(Kind::kNumeric);
    case Builtin::kAvg:
      return StaticType{Kind::kNumeric, Occ::kOpt};
    case Builtin::kMin:
    case Builtin::kMax:
      return StaticType{Kind::kAnyAtomic, Occ::kOpt};
    case Builtin::kFloor:
    case Builtin::kCeiling:
    case Builtin::kRound:
    case Builtin::kAbs:
      return StaticType{Kind::kNumeric, Occ::kOpt};
    case Builtin::kDoc:
    case Builtin::kRoot:
      return StaticType{Kind::kNode, Occ::kOpt};
    case Builtin::kCollection:
    case Builtin::kDistinctNodes:
      return StaticType::Star(Kind::kNode);
    case Builtin::kDistinctValues:
    case Builtin::kData:
      return StaticType::Star(Kind::kAnyAtomic);
    case Builtin::kIndexOf:
      return StaticType::Star(Kind::kInteger);
    default:
      return StaticType::Star(Kind::kAnyItem);
  }
}

class Checker {
 public:
  explicit Checker(const ParsedModule* module) : module_(module) {}

  Result<StaticType> Check(const Expr* e) {
    switch (e->kind()) {
      case ExprKind::kLiteral: {
        const auto& v = static_cast<const LiteralExpr*>(e)->value;
        return StaticType::One(FromXsType(v.type()));
      }
      case ExprKind::kVarRef: {
        const auto* var = static_cast<const VarRefExpr*>(e);
        if (var->is_global && module_ != nullptr) {
          for (const GlobalVariable& g : module_->globals) {
            if (g.slot == var->slot && g.has_type) {
              return FromSequenceType(g.type);
            }
          }
        }
        return StaticType::Star(Kind::kAnyItem);
      }
      case ExprKind::kContextItem:
        return StaticType::One(Kind::kAnyItem);
      case ExprKind::kRoot:
      case ExprKind::kStep:
        return StaticType::Star(Kind::kNode);
      case ExprKind::kSequence: {
        StaticType out = StaticType::Empty();
        for (size_t i = 0; i < e->NumChildren(); ++i) {
          XQP_ASSIGN_OR_RETURN(StaticType c, Check(e->child(i)));
          out.kind = KindLub(out.kind, c.kind);
          out.occ = OccConcat(out.occ, c.occ);
        }
        return out;
      }
      case ExprKind::kRange: {
        XQP_RETURN_NOT_OK(CheckNumericOperand(e->child(0), "to"));
        XQP_RETURN_NOT_OK(CheckNumericOperand(e->child(1), "to"));
        return StaticType::Star(Kind::kInteger);
      }
      case ExprKind::kArithmetic: {
        const auto* a = static_cast<const ArithmeticExpr*>(e);
        XQP_RETURN_NOT_OK(
            CheckNumericOperand(e->child(0), ArithOpName(a->op)));
        XQP_RETURN_NOT_OK(
            CheckNumericOperand(e->child(1), ArithOpName(a->op)));
        XQP_ASSIGN_OR_RETURN(StaticType lhs, Check(e->child(0)));
        XQP_ASSIGN_OR_RETURN(StaticType rhs, Check(e->child(1)));
        StaticType out;
        out.kind = Kind::kNumeric;
        if (lhs.kind == Kind::kInteger && rhs.kind == Kind::kInteger &&
            a->op != ArithOp::kDiv) {
          out.kind = Kind::kInteger;
        } else if (lhs.kind == Kind::kDouble || rhs.kind == Kind::kDouble) {
          out.kind = Kind::kDouble;
        }
        bool both_one = lhs.occ == Occ::kOne && rhs.occ == Occ::kOne;
        out.occ = both_one ? Occ::kOne : Occ::kOpt;
        return out;
      }
      case ExprKind::kUnary:
        XQP_RETURN_NOT_OK(CheckNumericOperand(e->child(0), "unary -"));
        return StaticType{Kind::kNumeric, Occ::kOpt};
      case ExprKind::kComparison: {
        const auto* cmp = static_cast<const ComparisonExpr*>(e);
        XQP_ASSIGN_OR_RETURN(StaticType lhs, Check(e->child(0)));
        XQP_ASSIGN_OR_RETURN(StaticType rhs, Check(e->child(1)));
        if (IsValueComp(cmp->op) &&
            !StaticType::MaybeValueComparable(lhs, rhs)) {
          return Status::StaticError(
              "static type error: cannot apply '" +
              std::string(CompOpName(cmp->op)) + "' to " + lhs.ToString() +
              " and " + rhs.ToString());
        }
        bool maybe_empty = IsValueComp(cmp->op) &&
                           (lhs.occ != Occ::kOne || rhs.occ != Occ::kOne);
        return StaticType{Kind::kBoolean,
                          maybe_empty ? Occ::kOpt : Occ::kOne};
      }
      case ExprKind::kLogical:
      case ExprKind::kQuantified:
      case ExprKind::kInstanceOf:
      case ExprKind::kCastableAs:
        XQP_RETURN_NOT_OK(CheckChildren(e));
        return StaticType::One(Kind::kBoolean);
      case ExprKind::kPath: {
        XQP_ASSIGN_OR_RETURN(StaticType lhs, Check(e->child(0)));
        if (!lhs.MaybeNode() && lhs.occ != Occ::kEmpty &&
            e->child(1)->kind() == ExprKind::kStep) {
          return Status::StaticError(
              "static type error: axis step applied to " + lhs.ToString());
        }
        XQP_ASSIGN_OR_RETURN(StaticType rhs, Check(e->child(1)));
        return StaticType{rhs.kind, Occ::kStar};
      }
      case ExprKind::kFilter: {
        XQP_ASSIGN_OR_RETURN(StaticType base, Check(e->child(0)));
        for (size_t i = 1; i < e->NumChildren(); ++i) {
          XQP_RETURN_NOT_OK(Check(e->child(i)).status());
        }
        return StaticType{base.kind, OccUnion(base.occ, Occ::kEmpty)};
      }
      case ExprKind::kFlwor: {
        const auto* flwor = static_cast<const FlworExpr*>(e);
        for (size_t i = 0; i + 1 < e->NumChildren(); ++i) {
          XQP_RETURN_NOT_OK(Check(e->child(i)).status());
        }
        XQP_ASSIGN_OR_RETURN(StaticType ret, Check(flwor->return_expr()));
        return StaticType{ret.kind, Occ::kStar};
      }
      case ExprKind::kIf: {
        XQP_RETURN_NOT_OK(Check(e->child(0)).status());
        XQP_ASSIGN_OR_RETURN(StaticType then_t, Check(e->child(1)));
        XQP_ASSIGN_OR_RETURN(StaticType else_t, Check(e->child(2)));
        return StaticType::Union(then_t, else_t);
      }
      case ExprKind::kTypeswitch:
      case ExprKind::kTryCatch: {
        StaticType out = StaticType::Empty();
        XQP_RETURN_NOT_OK(Check(e->child(0)).status());
        for (size_t i = 1; i < e->NumChildren(); ++i) {
          XQP_ASSIGN_OR_RETURN(StaticType branch, Check(e->child(i)));
          out = StaticType::Union(out, branch);
        }
        return out;
      }
      case ExprKind::kTreatAs:
        XQP_RETURN_NOT_OK(CheckChildren(e));
        return FromSequenceType(static_cast<const TreatExpr*>(e)->type);
      case ExprKind::kCastAs: {
        XQP_RETURN_NOT_OK(CheckChildren(e));
        const auto* cast = static_cast<const CastExpr*>(e);
        return StaticType{FromXsType(cast->target),
                          cast->optional ? Occ::kOpt : Occ::kOne};
      }
      case ExprKind::kUnion:
      case ExprKind::kIntersectExcept:
        XQP_RETURN_NOT_OK(CheckChildren(e));
        return StaticType::Star(Kind::kNode);
      case ExprKind::kFunctionCall: {
        const auto* call = static_cast<const FunctionCallExpr*>(e);
        if (call->user_index >= 0 && module_ != nullptr) {
          const UserFunction& fn = module_->functions[call->user_index];
          for (size_t i = 0; i < call->NumChildren(); ++i) {
            XQP_ASSIGN_OR_RETURN(StaticType arg, Check(call->child(i)));
            StaticType want = FromSequenceType(fn.param_types[i]);
            if (Disjoint(arg, want)) {
              return Status::StaticError(
                  "static type error: argument " + std::to_string(i + 1) +
                  " of " + fn.name.Lexical() + " has type " + arg.ToString() +
                  ", expected " + fn.param_types[i].ToString());
            }
          }
          return FromSequenceType(fn.return_type);
        }
        XQP_RETURN_NOT_OK(CheckChildren(e));
        return BuiltinResultType(static_cast<Builtin>(call->builtin));
      }
      case ExprKind::kElementCtor:
      case ExprKind::kAttributeCtor:
      case ExprKind::kCommentCtor:
      case ExprKind::kPiCtor:
      case ExprKind::kDocumentCtor:
        XQP_RETURN_NOT_OK(CheckChildren(e));
        return StaticType::One(Kind::kNode);
      case ExprKind::kTextCtor:
        XQP_RETURN_NOT_OK(CheckChildren(e));
        return StaticType{Kind::kNode, Occ::kOpt};
    }
    return StaticType::Star(Kind::kAnyItem);
  }

 private:
  Status CheckChildren(const Expr* e) {
    for (size_t i = 0; i < e->NumChildren(); ++i) {
      XQP_RETURN_NOT_OK(Check(e->child(i)).status());
    }
    return Status::OK();
  }

  Status CheckNumericOperand(const Expr* operand, std::string_view op) {
    XQP_ASSIGN_OR_RETURN(StaticType t, Check(operand));
    if (!t.MaybeNumeric() && t.occ != Occ::kEmpty) {
      return Status::StaticError("static type error: operand of '" +
                                 std::string(op) + "' has type " +
                                 t.ToString() + ", expected a numeric");
    }
    return Status::OK();
  }

  /// Values of the two types can never coincide (for argument checking).
  static bool Disjoint(const StaticType& value, const StaticType& expected) {
    if (value.kind == Kind::kAnyItem || expected.kind == Kind::kAnyItem) {
      return false;
    }
    if (value.kind == Kind::kNone) {
      // Definitely-empty input conflicts only with required-nonempty params.
      return expected.occ == Occ::kOne || expected.occ == Occ::kPlus;
    }
    if (expected.kind == Kind::kNone) return value.DefinitelyNonEmpty();
    bool value_node = value.kind == Kind::kNode;
    bool expected_node = expected.kind == Kind::kNode;
    if (value_node != expected_node) return true;
    if (value_node) return false;
    if (value.kind == Kind::kAnyAtomic || expected.kind == Kind::kAnyAtomic) {
      return false;
    }
    if (IsNumericKind(value.kind) && IsNumericKind(expected.kind)) return false;
    // Untyped casts to anything.
    if (value.kind == Kind::kUntyped || expected.kind == Kind::kUntyped) {
      return false;
    }
    if (IsStringLikeKind(value.kind) && IsStringLikeKind(expected.kind)) {
      return false;
    }
    return value.kind != expected.kind;
  }

  const ParsedModule* module_;
};

}  // namespace

StaticType StaticType::Union(const StaticType& a, const StaticType& b) {
  return StaticType{KindLub(a.kind, b.kind), OccUnion(a.occ, b.occ)};
}

bool StaticType::MaybeNumeric() const {
  switch (kind) {
    case Kind::kString:
    case Kind::kBoolean:
    case Kind::kQName:
    case Kind::kAnyUri:
      return false;
    default:
      return true;  // Numerics, untyped, nodes (untyped values), unknowns.
  }
}

bool StaticType::MaybeNode() const {
  return kind == Kind::kNode || kind == Kind::kAnyItem ||
         kind == Kind::kNone;
}

bool StaticType::MaybeValueComparable(const StaticType& a,
                                      const StaticType& b) {
  auto lenient = [](Kind k) {
    return k == Kind::kAnyItem || k == Kind::kAnyAtomic || k == Kind::kNone;
  };
  if (lenient(a.kind) || lenient(b.kind)) return true;
  // Untyped nodes atomize to xdt:untypedAtomic, which value-compares as a
  // string — so node-vs-numeric is the paper's static error.
  auto normalize = [](Kind k) { return k == Kind::kNode ? Kind::kUntyped : k; };
  Kind ka = normalize(a.kind);
  Kind kb = normalize(b.kind);
  bool a_num = IsNumericKind(ka);
  bool b_num = IsNumericKind(kb);
  if (a_num && b_num) return true;
  // Under static typing, untypedAtomic compares as string only (the paper's
  // <a>42</a> eq 42 example is a type error).
  bool a_str = IsStringLikeKind(ka);
  bool b_str = IsStringLikeKind(kb);
  if (a_str && b_str) return true;
  if (ka == Kind::kBoolean && kb == Kind::kBoolean) return true;
  if (ka == Kind::kQName && kb == Kind::kQName) return true;
  return false;
}

std::string StaticType::ToString() const {
  std::string s;
  switch (kind) {
    case Kind::kNone: return "empty-sequence()";
    case Kind::kAnyItem: s = "item()"; break;
    case Kind::kNode: s = "node()"; break;
    case Kind::kAnyAtomic: s = "xs:anyAtomicType"; break;
    case Kind::kNumeric: s = "xs:numeric"; break;
    case Kind::kInteger: s = "xs:integer"; break;
    case Kind::kDecimal: s = "xs:decimal"; break;
    case Kind::kDouble: s = "xs:double"; break;
    case Kind::kString: s = "xs:string"; break;
    case Kind::kUntyped: s = "xdt:untypedAtomic"; break;
    case Kind::kBoolean: s = "xs:boolean"; break;
    case Kind::kQName: s = "xs:QName"; break;
    case Kind::kAnyUri: s = "xs:anyURI"; break;
  }
  switch (occ) {
    case Occ::kEmpty: break;
    case Occ::kOne: break;
    case Occ::kOpt: s += "?"; break;
    case Occ::kStar: s += "*"; break;
    case Occ::kPlus: s += "+"; break;
  }
  return s;
}

StaticType InferStaticType(const Expr* e, const ParsedModule* module) {
  Checker checker(module);
  auto result = checker.Check(e);
  if (!result.ok()) return StaticType::Star(StaticType::Kind::kAnyItem);
  return result.value();
}

Status StaticTypeCheck(const ParsedModule* module) {
  Checker checker(module);
  for (const UserFunction& fn : module->functions) {
    if (fn.body != nullptr) {
      XQP_RETURN_NOT_OK(checker.Check(fn.body.get()).status());
    }
  }
  for (const GlobalVariable& g : module->globals) {
    if (g.init != nullptr) {
      XQP_RETURN_NOT_OK(checker.Check(g.init.get()).status());
    }
  }
  return checker.Check(module->body.get()).status();
}

}  // namespace xqp
