#include <functional>
#include <map>

#include "exec/interpreter.h"
#include "opt/const_fold.h"
#include "opt/properties.h"
#include "opt/rewriter.h"
#include "query/expr.h"

namespace xqp {
namespace opt_internal {

namespace {

/// Already in folded form (a literal, or a flat sequence of literals)?
bool IsFoldedForm(const Expr* e) {
  if (e->kind() == ExprKind::kLiteral) return true;
  if (e->kind() != ExprKind::kSequence) return false;
  for (size_t i = 0; i < e->NumChildren(); ++i) {
    if (e->child(i)->kind() != ExprKind::kLiteral) return false;
  }
  return true;
}

/// Evaluates a constant expression at compile time and replaces it with
/// its literal form. Evaluation errors leave the expression untouched (it
/// may sit on a dead branch).
void FoldConstant(ExprPtr& e, RuleContext* ctx) {
  if (IsFoldedForm(e.get()) || !e->props.constant) return;
  DynamicContext dctx;
  dctx.module = ctx->module;
  auto result = EvalExpr(e.get(), &dctx);
  if (!result.ok()) return;
  const Sequence& seq = result.value();
  if (seq.size() > 64) return;  // Don't bloat the plan with huge literals.
  for (const Item& item : seq) {
    if (!item.IsAtomic()) return;  // Only atomic results are foldable.
  }
  if (seq.size() == 1) {
    e = std::make_unique<LiteralExpr>(seq[0].AsAtomic());
  } else {
    auto folded = std::make_unique<SequenceExpr>();
    for (const Item& item : seq) {
      folded->AddChild(std::make_unique<LiteralExpr>(item.AsAtomic()));
    }
    e = std::move(folded);
  }
  ctx->Count("constant-folding");
}

bool LiteralBool(const Expr* e, bool* value) {
  if (e->kind() != ExprKind::kLiteral) return false;
  const auto& v = static_cast<const LiteralExpr*>(e)->value;
  // Use the EBV of the literal.
  Sequence seq{Item(v)};
  auto b = EffectiveBooleanValue(seq);
  if (!b.ok()) return false;
  *value = b.value();
  return true;
}

ExprPtr MakeBooleanLiteral(bool b) {
  return std::make_unique<LiteralExpr>(AtomicValue::Boolean(b));
}

/// Wraps `e` in fn:boolean(...) to preserve the EBV-to-boolean coercion.
ExprPtr WrapBoolean(ExprPtr e) {
  auto call = std::make_unique<FunctionCallExpr>(
      QName(std::string(kFnNamespace), "fn", "boolean"));
  call->builtin = static_cast<int>(Builtin::kBoolean);
  call->AddChild(std::move(e));
  return call;
}

/// Boolean/conditional algebraic rules: if(const) pruning, and/or with
/// literal operands ("algebraic properties of Boolean operators" — the
/// spec's non-determinism licenses `false and error => false`).
void SimplifyBoolean(ExprPtr& e, RuleContext* ctx) {
  if (e->kind() == ExprKind::kIf) {
    bool cond;
    if (LiteralBool(e->child(0), &cond)) {
      e = e->TakeChild(cond ? 1 : 2);
      ctx->Count("if-pruning");
      return;
    }
  }
  if (e->kind() == ExprKind::kLogical) {
    auto* logic = static_cast<LogicalExpr*>(e.get());
    for (int side = 0; side < 2; ++side) {
      bool value;
      if (!LiteralBool(e->child(side), &value)) continue;
      if (logic->is_and && !value) {
        e = MakeBooleanLiteral(false);
        ctx->Count("boolean-shortcircuit");
        return;
      }
      if (!logic->is_and && value) {
        e = MakeBooleanLiteral(true);
        ctx->Count("boolean-shortcircuit");
        return;
      }
      // Neutral element: drop it, keep the EBV of the other side.
      e = WrapBoolean(e->TakeChild(1 - side));
      ctx->Count("boolean-neutral");
      return;
    }
  }
  // fn:boolean(fn:boolean(x)) => fn:boolean(x); fn:not(fn:not(x)) =>
  // fn:boolean(x).
  if (e->kind() == ExprKind::kFunctionCall) {
    auto* call = static_cast<FunctionCallExpr*>(e.get());
    if (call->builtin == static_cast<int>(Builtin::kBoolean) &&
        call->NumChildren() == 1 &&
        call->child(0)->kind() == ExprKind::kFunctionCall) {
      auto* inner = static_cast<FunctionCallExpr*>(call->child(0));
      if (inner->builtin == static_cast<int>(Builtin::kBoolean) ||
          inner->builtin == static_cast<int>(Builtin::kNot)) {
        e = e->TakeChild(0);
        ctx->Count("boolean-idempotence");
        return;
      }
    }
    if (call->builtin == static_cast<int>(Builtin::kNot) &&
        call->NumChildren() == 1 &&
        call->child(0)->kind() == ExprKind::kFunctionCall) {
      auto* inner = static_cast<FunctionCallExpr*>(call->child(0));
      if (inner->builtin == static_cast<int>(Builtin::kNot) &&
          inner->NumChildren() == 1) {
        e = WrapBoolean(inner->TakeChild(0));
        ctx->Count("double-negation");
        return;
      }
    }
  }
}

/// Common-subexpression factorization within one FLWOR: pure, loop-
/// invariant subexpressions occurring twice or more are hoisted into a
/// fresh let clause (the paper's buffer-iterator-factory rewrite; its
/// error-timing caveat — "guaranteed only if runtime implements
/// consistently lazy evaluation" — applies to the eager engine).
void FactorCommonSubexpressions(FlworExpr* flwor, RuleContext* ctx) {
  std::vector<int> bound;
  CollectBoundSlots(flwor, &bound);
  auto is_bound = [&](int slot) {
    for (int b : bound) {
      if (b == slot) return true;
    }
    return false;
  };

  struct Site {
    Expr* parent;
    size_t index;
  };
  std::map<std::string, std::vector<Site>> groups;

  std::function<void(Expr*)> scan = [&](Expr* parent) {
    for (size_t i = 0; i < parent->NumChildren(); ++i) {
      Expr* child = parent->child(i);
      scan(child);
      if (child->kind() == ExprKind::kLiteral ||
          child->kind() == ExprKind::kVarRef ||
          child->kind() == ExprKind::kContextItem ||
          child->kind() == ExprKind::kStep) {
        continue;
      }
      const ExprProps& p = child->props;
      if (!p.analyzed || p.creates_nodes || p.uses_context ||
          p.uses_position || p.uses_last) {
        continue;
      }
      std::vector<int> used;
      CollectUsedSlots(child, &used);
      bool invariant = true;
      for (int slot : used) {
        if (is_bound(slot)) {
          invariant = false;
          break;
        }
      }
      if (!invariant) continue;
      std::string key = child->ToString();
      if (key.size() < 16) continue;  // Too trivial to pay for a binding.
      groups[key].push_back(Site{parent, i});
    }
  };
  scan(flwor);

  // Hoist the largest repeated group (one per pass keeps sites valid).
  const std::string* best = nullptr;
  for (const auto& [key, sites] : groups) {
    if (sites.size() < 2) continue;
    if (best == nullptr || key.size() > best->size()) best = &key;
  }
  if (best == nullptr) return;
  const std::vector<Site>& sites = groups[*best];

  int slot = (*ctx->next_slot)++;
  QName var_name("", "", "xqp-cse-" + std::to_string(slot));
  ExprPtr hoisted = sites[0].parent->child(sites[0].index)->Clone();
  for (const Site& site : sites) {
    auto ref = std::make_unique<VarRefExpr>(var_name);
    ref->slot = slot;
    site.parent->SetChild(site.index, std::move(ref));
  }
  FlworExpr::Clause clause;
  clause.type = FlworExpr::Clause::Type::kLet;
  clause.var = var_name;
  clause.var_slot = slot;
  flwor->clauses.insert(flwor->clauses.begin(), clause);
  flwor->InsertChild(0, std::move(hoisted));
  ctx->Count("cse-factorization");
}

}  // namespace

Status ApplyCoreRules(ExprPtr& e, RuleContext* ctx) {
  for (size_t i = 0; i < e->NumChildren(); ++i) {
    XQP_RETURN_NOT_OK(ApplyCoreRules(e->child_slot(i), ctx));
  }
  if (ctx->options->const_fold) ConstFoldRewrite(e, ctx);
  if (ctx->options->constant_folding) FoldConstant(e, ctx);
  if (ctx->options->boolean_simplification) SimplifyBoolean(e, ctx);
  if (ctx->options->cse && e->kind() == ExprKind::kFlwor) {
    FactorCommonSubexpressions(static_cast<FlworExpr*>(e.get()), ctx);
  }
  return Status::OK();
}

}  // namespace opt_internal
}  // namespace xqp
