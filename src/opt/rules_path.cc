#include "index/index_planner.h"
#include "opt/properties.h"
#include "opt/rewriter.h"
#include "query/expr.h"

namespace xqp {
namespace opt_internal {

namespace {

/// Doc-order / duplicate-elimination elision on one path node. Assumes
/// Expr::props are fresh.
void ElideDdo(PathExpr* path, RuleContext* ctx) {
  const StepExpr* step = UnderlyingStep(path->child(1));
  if (step == nullptr) return;
  bool ordered = false;
  bool distinct = false;
  bool ntn = false;
  PathStructuralFlags(path->child(0)->props, step->axis, &ordered, &distinct,
                      &ntn);
  if (path->needs_sort && ordered) {
    // Residual duplicates (if any) are handled by the cheaper order-
    // preserving dedup, which needs_dedup controls.
    path->needs_sort = false;
    ctx->Count("ddo-elision-sort");
  }
  if (path->needs_dedup && distinct) {
    path->needs_dedup = false;
    ctx->Count("ddo-elision-dedup");
  }
}

/// True when evaluating `pred` as a predicate cannot depend on the context
/// position: its value is never a numeric atom (so the predicate is a pure
/// EBV test) and it does not call position()/last(). Such predicates
/// survive an axis change that renumbers the context sequence.
bool PredicateIsPositionFree(const Expr* pred) {
  if (!pred->props.analyzed) return false;  // Unknown: assume positional.
  if (pred->props.uses_position || pred->props.uses_last) return false;
  if (pred->props.nodes_only) return true;  // EBV of a node sequence.
  switch (pred->kind()) {
    case ExprKind::kComparison:
    case ExprKind::kLogical:
    case ExprKind::kQuantified:
    case ExprKind::kInstanceOf:
    case ExprKind::kCastableAs:
      return true;  // Always boolean-valued.
    default:
      return false;
  }
}

/// Collapses X/descendant-or-self::node()/child::T into X/descendant::T
/// (the "//" abbreviation undone into one step). Predicates on the child
/// step are kept only when provably position-free — positional predicates
/// count per parent and would change meaning. Cheaper to evaluate and
/// restores the precision the ddo lattice needs for $doc/a//b.
void CollapseSlashSlash(ExprPtr& e, RuleContext* ctx) {
  auto* path = static_cast<PathExpr*>(e.get());
  StepExpr* rhs = nullptr;
  if (path->child(1)->kind() == ExprKind::kStep) {
    rhs = static_cast<StepExpr*>(path->child(1));
  } else if (path->child(1)->kind() == ExprKind::kFilter) {
    auto* filter = static_cast<FilterExpr*>(path->child(1));
    if (filter->child(0)->kind() != ExprKind::kStep) return;
    for (size_t p = 1; p < filter->NumChildren(); ++p) {
      if (!PredicateIsPositionFree(filter->child(p))) return;
    }
    rhs = static_cast<StepExpr*>(filter->child(0));
  } else {
    return;
  }
  if (rhs->axis != Axis::kChild) return;
  if (path->child(0)->kind() != ExprKind::kPath) return;
  auto* lhs = static_cast<PathExpr*>(path->child(0));
  if (lhs->child(1)->kind() != ExprKind::kStep) return;
  auto* dos = static_cast<StepExpr*>(lhs->child(1));
  if (dos->axis != Axis::kDescendantOrSelf ||
      dos->test.kind != NodeTest::Kind::kAnyKind) {
    return;
  }
  rhs->axis = Axis::kDescendant;
  e->SetChild(0, lhs->TakeChild(0));
  ctx->Count("slash-slash-collapse");
}

}  // namespace

Status ApplyPathRules(ExprPtr& e, RuleContext* ctx) {
  // Bottom-up so inner paths expose their guarantees first... but flags
  // feed properties, which the driver refreshes between passes; within a
  // pass we re-analyze the subtree after rewriting children.
  for (size_t i = 0; i < e->NumChildren(); ++i) {
    XQP_RETURN_NOT_OK(ApplyPathRules(e->child_slot(i), ctx));
  }
  if (e->kind() == ExprKind::kPath && ctx->options->ddo_elision) {
    CollapseSlashSlash(e, ctx);
    // Refresh properties of this subtree (children may have changed flags).
    AnalyzeExpr(e.get(), ctx->module);
    ElideDdo(static_cast<PathExpr*>(e.get()), ctx);
  }
  if (e->kind() == ExprKind::kPath && ctx->options->index_paths) {
    // Index marking: purely structural recognition of the fragment the
    // document synopsis / value index can answer (index/index_planner.h).
    // The plan itself is re-derived at execution time, so the flag can
    // never go stale against the expression tree; other rules reshaping
    // the path simply flip it on the next pass. Only the false->true
    // transition counts as a change, so marking converges.
    auto* path = static_cast<PathExpr*>(e.get());
    bool candidate = PlanIndexPath(*path).has_value();
    if (candidate != path->index_candidate) {
      path->index_candidate = candidate;
      if (candidate) ctx->Count("index-path-mark");
    }
  }
  return Status::OK();
}

}  // namespace opt_internal
}  // namespace xqp
