#include "opt/properties.h"

#include "exec/functions.h"

namespace xqp {

namespace {

/// Pure, deterministic builtins (safe to constant-fold / factor).
bool IsPureBuiltin(Builtin id) {
  switch (id) {
    case Builtin::kDoc:
    case Builtin::kCollection:
    case Builtin::kPosition:
    case Builtin::kLast:
    case Builtin::kError:
    case Builtin::kTrace:
      return false;
    default:
      return true;
  }
}

bool BuiltinUsesFocus(Builtin id) {
  switch (id) {
    case Builtin::kPosition:
    case Builtin::kLast:
      return true;
    default:
      return false;
  }
}

void Analyze(Expr* e, const ParsedModule* module);

void AnalyzeChildren(Expr* e, const ParsedModule* module) {
  for (size_t i = 0; i < e->NumChildren(); ++i) {
    Analyze(e->child(i), module);
  }
}

bool AnyChild(const Expr* e, bool ExprProps::*flag) {
  for (size_t i = 0; i < e->NumChildren(); ++i) {
    if (e->child(i)->props.*flag) return true;
  }
  return false;
}

bool AllChildren(const Expr* e, bool ExprProps::*flag) {
  for (size_t i = 0; i < e->NumChildren(); ++i) {
    if (!(e->child(i)->props.*flag)) return false;
  }
  return true;
}

void Analyze(Expr* e, const ParsedModule* module) {
  AnalyzeChildren(e, module);
  ExprProps& p = e->props;
  p = ExprProps{};
  p.analyzed = true;
  // Conservative defaults; refined per kind below.
  p.may_raise_error = true;
  p.creates_nodes = AnyChild(e, &ExprProps::creates_nodes);
  p.uses_context = AnyChild(e, &ExprProps::uses_context);
  p.uses_position = AnyChild(e, &ExprProps::uses_position);
  p.uses_last = AnyChild(e, &ExprProps::uses_last);

  switch (e->kind()) {
    case ExprKind::kLiteral:
      p.atomics_only = true;
      p.singleton = true;
      p.constant = true;
      p.may_raise_error = false;
      p.ordered = p.distinct = p.no_two_nested = true;  // Vacuous.
      break;

    case ExprKind::kVarRef: {
      p.may_raise_error = false;  // Binding errors surface at the binder.
      // Declared types of globals refine the analysis: a document-node()
      // variable (the paper's $document) is a singleton node.
      const auto* var = static_cast<const VarRefExpr*>(e);
      if (var->is_global && module != nullptr) {
        for (const GlobalVariable& g : module->globals) {
          if (g.slot != var->slot || !g.has_type) continue;
          const SequenceType& t = g.type;
          if (t.occurrence == Occurrence::kOne && !t.empty_sequence) {
            p.singleton = true;
            p.ordered = p.distinct = p.no_two_nested = true;
          }
          switch (t.item.kind) {
            case ItemTypeTest::Kind::kDocument:
            case ItemTypeTest::Kind::kElement:
            case ItemTypeTest::Kind::kAttribute:
            case ItemTypeTest::Kind::kNode:
            case ItemTypeTest::Kind::kText:
            case ItemTypeTest::Kind::kComment:
            case ItemTypeTest::Kind::kPi:
              p.nodes_only = true;
              break;
            case ItemTypeTest::Kind::kAtomic:
              p.atomics_only = true;
              break;
            case ItemTypeTest::Kind::kItem:
              break;
          }
          break;
        }
      }
      break;
    }

    case ExprKind::kContextItem:
      p.singleton = true;
      p.uses_context = true;
      p.ordered = p.distinct = p.no_two_nested = true;  // Singleton.
      break;

    case ExprKind::kRoot:
      p.singleton = true;
      p.nodes_only = true;
      p.uses_context = true;
      p.ordered = p.distinct = p.no_two_nested = true;
      break;

    case ExprKind::kStep: {
      const auto* step = static_cast<const StepExpr*>(e);
      p.nodes_only = true;
      p.uses_context = true;
      p.distinct = true;
      p.ordered = !IsReverseAxis(step->axis);
      switch (step->axis) {
        case Axis::kChild:
        case Axis::kAttribute:
        case Axis::kSelf:
        case Axis::kParent:
        case Axis::kFollowingSibling:
        case Axis::kPrecedingSibling:
          p.no_two_nested = true;  // Siblings / singletons never nest.
          break;
        default:
          p.no_two_nested = false;
          break;
      }
      break;
    }

    case ExprKind::kPath: {
      const Expr* lhs = e->child(0);
      const Expr* rhs = e->child(1);
      p.nodes_only = rhs->props.nodes_only;
      p.atomics_only = rhs->props.atomics_only;
      p.uses_context = lhs->props.uses_context;
      const auto* path = static_cast<const PathExpr*>(e);
      bool s_ordered = false;
      bool s_distinct = false;
      bool s_ntn = false;
      if (const StepExpr* step = UnderlyingStep(rhs)) {
        PathStructuralFlags(lhs->props, step->axis, &s_ordered, &s_distinct,
                            &s_ntn);
      }
      // The engine enforces order/distinctness whenever the flags are set;
      // otherwise the structural guarantees carry through.
      p.ordered = path->needs_sort || s_ordered;
      p.distinct = path->needs_sort || path->needs_dedup || s_distinct;
      p.no_two_nested = s_ntn;
      break;
    }

    case ExprKind::kFilter: {
      // Filtering preserves the base's order properties.
      const ExprProps& base = e->child(0)->props;
      p.ordered = base.ordered;
      p.distinct = base.distinct;
      p.no_two_nested = base.no_two_nested;
      p.nodes_only = base.nodes_only;
      p.atomics_only = base.atomics_only;
      p.uses_context = base.uses_context;
      break;
    }

    case ExprKind::kSequence:
      p.nodes_only = AllChildren(e, &ExprProps::nodes_only);
      p.atomics_only = AllChildren(e, &ExprProps::atomics_only);
      p.constant = AllChildren(e, &ExprProps::constant);
      p.may_raise_error = !AllChildren(e, &ExprProps::constant);
      if (e->NumChildren() == 1) {
        p.ordered = e->child(0)->props.ordered;
        p.distinct = e->child(0)->props.distinct;
        p.no_two_nested = e->child(0)->props.no_two_nested;
        p.singleton = e->child(0)->props.singleton;
      }
      break;

    case ExprKind::kRange:
      p.atomics_only = true;
      // Ranges stay runtime: folding could expand a huge literal range.
      p.constant = false;
      break;

    case ExprKind::kArithmetic:
    case ExprKind::kUnary:
      p.atomics_only = true;
      p.constant = AllChildren(e, &ExprProps::constant);
      break;

    case ExprKind::kComparison: {
      const auto* cmp = static_cast<const ComparisonExpr*>(e);
      p.atomics_only = true;
      p.singleton = IsGeneralComp(cmp->op);
      p.constant = AllChildren(e, &ExprProps::constant);
      break;
    }

    case ExprKind::kLogical:
      p.atomics_only = true;
      p.singleton = true;
      p.constant = AllChildren(e, &ExprProps::constant);
      break;

    case ExprKind::kIf:
      p.nodes_only = e->child(1)->props.nodes_only && e->child(2)->props.nodes_only;
      p.atomics_only =
          e->child(1)->props.atomics_only && e->child(2)->props.atomics_only;
      p.constant = AllChildren(e, &ExprProps::constant);
      break;

    case ExprKind::kFlwor: {
      const auto* flwor = static_cast<const FlworExpr*>(e);
      p.nodes_only = flwor->return_expr()->props.nodes_only;
      p.atomics_only = flwor->return_expr()->props.atomics_only;
      break;
    }

    case ExprKind::kQuantified:
      p.atomics_only = true;
      p.singleton = true;
      break;

    case ExprKind::kTypeswitch:
      break;

    case ExprKind::kInstanceOf:
    case ExprKind::kCastableAs:
      p.atomics_only = true;
      p.singleton = true;
      p.constant = e->child(0)->props.constant;
      break;

    case ExprKind::kCastAs:
      p.atomics_only = true;
      p.constant = e->child(0)->props.constant;
      break;

    case ExprKind::kTreatAs: {
      const ExprProps& base = e->child(0)->props;
      p = base;
      p.may_raise_error = true;
      break;
    }

    case ExprKind::kUnion:
    case ExprKind::kIntersectExcept:
      p.nodes_only = true;
      p.ordered = true;
      p.distinct = true;
      break;

    case ExprKind::kFunctionCall: {
      const auto* call = static_cast<const FunctionCallExpr*>(e);
      if (call->builtin >= 0) {
        Builtin id = static_cast<Builtin>(call->builtin);
        if (BuiltinUsesFocus(id)) {
          p.uses_context = true;
          p.uses_position = p.uses_position || id == Builtin::kPosition;
          p.uses_last = p.uses_last || id == Builtin::kLast;
        }
        if (call->NumChildren() == 0 &&
            (id == Builtin::kString || id == Builtin::kStringLength ||
             id == Builtin::kNumber || id == Builtin::kNormalizeSpace ||
             id == Builtin::kName || id == Builtin::kLocalName ||
             id == Builtin::kNamespaceUri || id == Builtin::kRoot)) {
          p.uses_context = true;
        }
        p.constant = IsPureBuiltin(id) &&
                     AllChildren(e, &ExprProps::constant) &&
                     !BuiltinUsesFocus(id);
        switch (id) {
          case Builtin::kCount:
          case Builtin::kEmpty:
          case Builtin::kExists:
          case Builtin::kNot:
          case Builtin::kBoolean:
          case Builtin::kTrue:
          case Builtin::kFalse:
          case Builtin::kString:
          case Builtin::kConcat:
          case Builtin::kStringLength:
            p.atomics_only = true;
            p.singleton = true;
            break;
          case Builtin::kDistinctNodes:
            p.nodes_only = true;
            p.ordered = true;
            p.distinct = true;
            break;
          case Builtin::kDoc:
            p.nodes_only = true;
            p.ordered = p.distinct = p.no_two_nested = true;
            break;
          default:
            break;
        }
      } else if (call->user_index >= 0 && module != nullptr) {
        const UserFunction& fn = module->functions[call->user_index];
        // A user function may construct nodes; without a cached summary be
        // conservative.
        p.creates_nodes = true;
        (void)fn;
      }
      break;
    }

    case ExprKind::kElementCtor:
    case ExprKind::kAttributeCtor:
    case ExprKind::kCommentCtor:
    case ExprKind::kPiCtor:
    case ExprKind::kDocumentCtor:
      p.creates_nodes = true;
      p.nodes_only = true;
      p.singleton = true;
      p.ordered = p.distinct = p.no_two_nested = true;
      break;

    case ExprKind::kTextCtor:
      p.creates_nodes = true;
      p.nodes_only = true;
      break;

    case ExprKind::kTryCatch:
      p.nodes_only =
          e->child(0)->props.nodes_only && e->child(1)->props.nodes_only;
      p.atomics_only =
          e->child(0)->props.atomics_only && e->child(1)->props.atomics_only;
      // Never constant-fold across a catch: folding would bake in the
      // handler decision.
      p.constant = false;
      break;
  }
}

}  // namespace

void AnalyzeExpr(Expr* e, const ParsedModule* module) { Analyze(e, module); }

const StepExpr* UnderlyingStep(const Expr* e) {
  if (e->kind() == ExprKind::kStep) {
    return static_cast<const StepExpr*>(e);
  }
  if (e->kind() == ExprKind::kFilter) {
    return UnderlyingStep(e->child(0));
  }
  return nullptr;
}

void PathStructuralFlags(const ExprProps& lhs, Axis axis, bool* ordered,
                         bool* distinct, bool* no_two_nested) {
  *ordered = false;
  *distinct = false;
  *no_two_nested = false;
  switch (axis) {
    case Axis::kChild:
    case Axis::kAttribute:
      // Children of distinct parents are distinct (each child has exactly
      // one parent); order holds when parents are ordered and disjoint.
      *distinct = lhs.distinct;
      *ordered = lhs.ordered && lhs.distinct && lhs.no_two_nested;
      *no_two_nested = lhs.no_two_nested;
      break;
    case Axis::kSelf:
      *ordered = lhs.ordered;
      *distinct = lhs.distinct;
      *no_two_nested = lhs.no_two_nested;
      break;
    case Axis::kDescendant:
    case Axis::kDescendantOrSelf: {
      bool clean = lhs.ordered && lhs.distinct && lhs.no_two_nested;
      *ordered = clean;
      *distinct = clean;
      *no_two_nested = false;  // Descendant sets nest by construction.
      break;
    }
    case Axis::kParent:
      if (lhs.singleton) {
        *ordered = *distinct = *no_two_nested = true;
      }
      break;
    default:
      // Reverse and following/preceding axes: no guarantees.
      break;
  }
}

int CountVarUses(const Expr* e, int slot, bool* in_loop) {
  int count = 0;
  if (e->kind() == ExprKind::kVarRef) {
    const auto* var = static_cast<const VarRefExpr*>(e);
    if (!var->is_global && var->slot == slot) return 1;
    return 0;
  }
  for (size_t i = 0; i < e->NumChildren(); ++i) {
    const Expr* child = e->child(i);
    int uses = CountVarUses(child, slot, in_loop);
    count += uses;
    if (uses > 0 && in_loop != nullptr) {
      bool loopy = false;
      switch (e->kind()) {
        case ExprKind::kPath:
          loopy = i == 1;  // Path rhs runs once per lhs item.
          break;
        case ExprKind::kFilter:
          loopy = i >= 1;  // Predicates run once per base item.
          break;
        case ExprKind::kFlwor: {
          const auto* flwor = static_cast<const FlworExpr*>(e);
          // Everything after the first for clause runs per tuple.
          size_t first_for = flwor->clauses.size();
          for (size_t c = 0; c < flwor->clauses.size(); ++c) {
            if (flwor->clauses[c].type == FlworExpr::Clause::Type::kFor) {
              first_for = c;
              break;
            }
          }
          loopy = i > first_for;
          break;
        }
        case ExprKind::kQuantified:
          loopy = i > 0;
          break;
        case ExprKind::kFunctionCall:
          // Argument evaluation is once, but the callee may loop; be safe
          // for user functions.
          loopy = static_cast<const FunctionCallExpr*>(e)->user_index >= 0;
          break;
        default:
          break;
      }
      if (loopy) *in_loop = true;
    }
  }
  return count;
}

int SubstituteVar(Expr* e, int slot, const Expr& replacement) {
  int count = 0;
  for (size_t i = 0; i < e->NumChildren(); ++i) {
    Expr* child = e->child(i);
    if (child->kind() == ExprKind::kVarRef) {
      const auto* var = static_cast<const VarRefExpr*>(child);
      if (!var->is_global && var->slot == slot) {
        e->SetChild(i, replacement.Clone());
        ++count;
        continue;
      }
    }
    count += SubstituteVar(child, slot, replacement);
  }
  return count;
}

void CollectBoundSlots(const Expr* e, std::vector<int>* slots) {
  switch (e->kind()) {
    case ExprKind::kFlwor: {
      const auto* flwor = static_cast<const FlworExpr*>(e);
      for (const auto& c : flwor->clauses) {
        if (c.var_slot >= 0) slots->push_back(c.var_slot);
        if (c.pos_slot >= 0) slots->push_back(c.pos_slot);
      }
      break;
    }
    case ExprKind::kQuantified: {
      const auto* q = static_cast<const QuantifiedExpr*>(e);
      for (const auto& b : q->bindings) {
        if (b.var_slot >= 0) slots->push_back(b.var_slot);
      }
      break;
    }
    case ExprKind::kTypeswitch: {
      const auto* ts = static_cast<const TypeswitchExpr*>(e);
      for (const auto& c : ts->cases) {
        if (c.var_slot >= 0) slots->push_back(c.var_slot);
      }
      if (ts->default_var_slot >= 0) slots->push_back(ts->default_var_slot);
      break;
    }
    default:
      break;
  }
  for (size_t i = 0; i < e->NumChildren(); ++i) {
    CollectBoundSlots(e->child(i), slots);
  }
}

void CollectUsedSlots(const Expr* e, std::vector<int>* slots) {
  if (e->kind() == ExprKind::kVarRef) {
    const auto* var = static_cast<const VarRefExpr*>(e);
    if (!var->is_global) slots->push_back(var->slot);
  }
  for (size_t i = 0; i < e->NumChildren(); ++i) {
    CollectUsedSlots(e->child(i), slots);
  }
}

}  // namespace xqp
