#include "opt/inline_functions.h"
#include "opt/properties.h"
#include "opt/rewriter.h"
#include "query/expr.h"

namespace xqp {
namespace opt_internal {

namespace {

/// LET clause folding and dead-let elimination (paper: fold when the
/// expression never creates new nodes, or when the variable is used once
/// outside any loop; drop unused lets — both engines then agree on the
/// laziness the paper assumes).
void FoldLets(FlworExpr* flwor, RuleContext* ctx) {
  for (size_t i = 0; i < flwor->clauses.size();) {
    FlworExpr::Clause& c = flwor->clauses[i];
    if (c.type != FlworExpr::Clause::Type::kLet) {
      ++i;
      continue;
    }
    // Count uses in everything after this clause.
    int uses = 0;
    bool in_loop = false;
    for (size_t j = i + 1; j < flwor->NumChildren(); ++j) {
      uses += CountVarUses(flwor->child(j), c.var_slot, &in_loop);
    }
    const Expr* value = flwor->child(i);
    if (uses == 0) {
      flwor->clauses.erase(flwor->clauses.begin() + i);
      flwor->RemoveChild(i);
      ctx->Count("dead-let-elimination");
      continue;
    }
    bool cheap = value->kind() == ExprKind::kLiteral ||
                 value->kind() == ExprKind::kVarRef;
    bool once_outside_loop = uses == 1 && !in_loop;
    bool foldable =
        cheap || (once_outside_loop && !value->props.uses_context);
    if (foldable) {
      ExprPtr taken = flwor->TakeChild(i);
      int slot = c.var_slot;
      flwor->clauses.erase(flwor->clauses.begin() + i);
      flwor->RemoveChild(i);
      for (size_t j = i; j < flwor->NumChildren(); ++j) {
        SubstituteVar(flwor->child(j), slot, *taken);
        // Direct child *is* the var ref?
        Expr* child = flwor->child(j);
        if (child->kind() == ExprKind::kVarRef) {
          const auto* var = static_cast<const VarRefExpr*>(child);
          if (!var->is_global && var->slot == slot) {
            flwor->SetChild(j, taken->Clone());
          }
        }
      }
      ctx->Count("let-folding");
      continue;
    }
    ++i;
  }
}

/// FOR-clause unnesting: for $x in (for $y in E where P return F) ...
/// splices the inner clauses into the outer FLWOR ("traditional database
/// technique", relatively simpler than OQL since XML has no nested
/// collections).
void UnnestForClauses(FlworExpr* flwor, RuleContext* ctx) {
  for (size_t i = 0; i < flwor->clauses.size(); ++i) {
    FlworExpr::Clause& c = flwor->clauses[i];
    if (c.type != FlworExpr::Clause::Type::kFor || c.has_pos_var()) continue;
    if (flwor->child(i)->kind() != ExprKind::kFlwor) continue;
    auto* inner = static_cast<FlworExpr*>(flwor->child(i));
    bool simple = true;
    for (const auto& ic : inner->clauses) {
      if (ic.type == FlworExpr::Clause::Type::kOrderSpec) simple = false;
    }
    if (!simple) continue;

    // Splice: [before i] + inner clauses + (for $x in inner-return) + rest.
    ExprPtr inner_owned = flwor->TakeChild(i);
    auto* inner_flwor = static_cast<FlworExpr*>(inner_owned.get());
    size_t inner_n = inner_flwor->clauses.size();
    // Insert inner clauses before clause i.
    for (size_t k = 0; k < inner_n; ++k) {
      flwor->clauses.insert(flwor->clauses.begin() + i + k,
                            inner_flwor->clauses[k]);
      flwor->InsertChild(i + k, inner_flwor->TakeChild(k));
    }
    // The outer for's domain becomes the inner return expression.
    flwor->SetChild(i + inner_n, inner_flwor->TakeChild(inner_n));
    ctx->Count("for-unnesting");
    return;  // Indices changed; retry next pass.
  }
}

/// RETURN-clause unnesting: a FLWOR whose return is itself an order-free
/// FLWOR merges into one tuple stream.
void UnnestReturn(FlworExpr* flwor, RuleContext* ctx) {
  Expr* ret = flwor->return_expr();
  if (ret->kind() != ExprKind::kFlwor) return;
  auto* inner = static_cast<FlworExpr*>(ret);
  for (const auto& ic : inner->clauses) {
    if (ic.type == FlworExpr::Clause::Type::kOrderSpec) return;
  }
  size_t ret_index = flwor->NumChildren() - 1;
  ExprPtr inner_owned = flwor->TakeChild(ret_index);
  flwor->RemoveChild(ret_index);
  auto* inner_flwor = static_cast<FlworExpr*>(inner_owned.get());
  size_t inner_n = inner_flwor->clauses.size();
  for (size_t k = 0; k < inner_n; ++k) {
    flwor->clauses.push_back(inner_flwor->clauses[k]);
    flwor->AddChild(inner_flwor->TakeChild(k));
  }
  flwor->AddChild(inner_flwor->TakeChild(inner_n));  // Inner return.
  ctx->Count("return-unnesting");
}

/// FOR-clause minimization: `for $x in E return $x` => E, and
/// `for $x in E return $x/path` => E/path when E's order/distinctness make
/// the forms equivalent.
void MinimizeFor(ExprPtr& e, RuleContext* ctx) {
  auto* flwor = static_cast<FlworExpr*>(e.get());
  if (flwor->clauses.size() != 1) return;
  const FlworExpr::Clause& c = flwor->clauses[0];
  if (c.type != FlworExpr::Clause::Type::kFor || c.has_pos_var()) return;
  Expr* ret = flwor->return_expr();

  // for $x in E return $x  =>  E.
  if (ret->kind() == ExprKind::kVarRef) {
    const auto* var = static_cast<const VarRefExpr*>(ret);
    if (!var->is_global && var->slot == c.var_slot) {
      e = flwor->TakeChild(0);
      ctx->Count("for-minimization");
      return;
    }
  }

  // for $x in E return $x/steps  =>  E/steps (identity requires E ordered
  // and duplicate-free, since the path form re-sorts).
  if (ret->kind() != ExprKind::kPath) return;
  const ExprProps& domain = flwor->child(0)->props;
  if (!domain.ordered || !domain.distinct) return;
  // Find the leftmost leaf of the path chain.
  Expr* leftmost = ret;
  while (leftmost->kind() == ExprKind::kPath) leftmost = leftmost->child(0);
  if (leftmost->kind() != ExprKind::kVarRef) return;
  const auto* var = static_cast<const VarRefExpr*>(leftmost);
  if (var->is_global || var->slot != c.var_slot) return;
  // The variable must not occur anywhere else.
  bool in_loop = false;
  if (CountVarUses(ret, c.var_slot, &in_loop) != 1) return;

  ExprPtr domain_expr = flwor->TakeChild(0);
  ExprPtr path = flwor->TakeChild(1);  // The return expression.
  // Replace the leftmost VarRef with the domain.
  Expr* cursor = path.get();
  while (cursor->child(0)->kind() == ExprKind::kPath) {
    cursor = cursor->child(0);
  }
  cursor->SetChild(0, std::move(domain_expr));
  e = std::move(path);
  ctx->Count("for-minimization");
}

}  // namespace

Status ApplyFlworRules(ExprPtr& e, RuleContext* ctx) {
  for (size_t i = 0; i < e->NumChildren(); ++i) {
    XQP_RETURN_NOT_OK(ApplyFlworRules(e->child_slot(i), ctx));
  }
  if (e->kind() == ExprKind::kFlwor) {
    auto* flwor = static_cast<FlworExpr*>(e.get());
    if (ctx->options->flwor_unnesting) {
      UnnestForClauses(flwor, ctx);
      UnnestReturn(flwor, ctx);
    }
    if (ctx->options->let_folding) {
      FoldLets(flwor, ctx);
    }
    // A FLWOR whose clauses all folded away reduces to its return.
    if (flwor->clauses.empty()) {
      e = e->TakeChild(0);
      ctx->Count("flwor-collapse");
    } else if (ctx->options->for_to_path) {
      MinimizeFor(e, ctx);
    }
  }
  if (e->kind() == ExprKind::kFunctionCall && ctx->options->function_inlining) {
    // The mechanism lives in opt/inline_functions.cc, shared with the
    // engine's pre-lowering fixpoint pass.
    XQP_ASSIGN_OR_RETURN(
        int inlined,
        InlineFunctionCalls(e, *ctx->module,
                            ctx->options->inline_size_limit, ctx->next_slot));
    for (int i = 0; i < inlined; ++i) ctx->Count("function-inlining");
  }
  return Status::OK();
}

}  // namespace opt_internal
}  // namespace xqp
