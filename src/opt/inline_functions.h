#ifndef XQP_OPT_INLINE_FUNCTIONS_H_
#define XQP_OPT_INLINE_FUNCTIONS_H_

#include "base/status.h"
#include "query/static_context.h"

namespace xqp {

namespace opt_internal {

/// One bottom-up expansion pass over `e`: every call to a non-recursive
/// user function whose body has at most `inline_size_limit` expression
/// nodes is replaced by a slot-remapped clone of the body, with arguments
/// let-bound (declared parameter types keep their dynamic check as
/// treat-as). Fresh slots are drawn from `*next_slot`. Returns the number
/// of calls expanded; calls exposed by an expansion (a callee's own calls)
/// are left for a later pass.
Result<int> InlineFunctionCalls(ExprPtr& e, const ParsedModule& module,
                                int inline_size_limit, int* next_slot);

}  // namespace opt_internal

/// Pre-lowering pass over the module body: repeats InlineFunctionCalls
/// until no eligible call site remains, so call chains deeper than the
/// rewriter's max_passes still flatten completely before the bytecode
/// compiler runs (a kFunctionCall to a user function otherwise costs a
/// bailout thunk per evaluation). Extends module->num_slots with the
/// frames of the spliced bodies. Returns the total number of calls
/// expanded.
Result<int> InlineSmallFunctions(ParsedModule* module, int inline_size_limit);

}  // namespace xqp

#endif  // XQP_OPT_INLINE_FUNCTIONS_H_
