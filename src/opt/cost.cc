#include "opt/cost.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <unordered_map>
#include <vector>

namespace xqp {
namespace {

double Log2(double x) { return std::log2(std::max(2.0, x)); }

/// Total postings (elements + attributes + the root) in each synopsis
/// node's subtree — the exact element population under every distinct
/// path. Children always carry larger ids than their parent (paths are
/// discovered top-down in one document scan), so a reverse scan
/// accumulates bottom-up.
std::vector<uint64_t> SubtreePostings(const DocumentIndexes& idx) {
  const size_t n = idx.NumSynopsisNodes();
  std::vector<uint64_t> sum(n, 0);
  for (size_t i = n; i-- > 0;) {
    sum[i] = idx.postings(static_cast<int32_t>(i)).size();
    for (int32_t c : idx.synopsis_node(static_cast<int32_t>(i)).children) {
      sum[i] += sum[c];
    }
  }
  return sum;
}

/// Full per-tag element population (every synopsis path carrying the name)
/// — the posting list size a structural join consumes.
uint64_t TagTotal(const DocumentIndexes& idx, uint32_t name_id,
                  std::unordered_map<uint32_t, uint64_t>* memo) {
  if (name_id == kNoName) return 0;
  auto it = memo->find(name_id);
  if (it != memo->end()) return it->second;
  uint64_t total = 0;
  for (size_t s = 0; s < idx.NumSynopsisNodes(); ++s) {
    const auto& node = idx.synopsis_node(static_cast<int32_t>(s));
    if (node.kind == NodeKind::kElement && node.name_id == name_id) {
      total += idx.postings(static_cast<int32_t>(s)).size();
    }
  }
  (*memo)[name_id] = total;
  return total;
}

/// Number of equi-width buckets for the fallback selectivity histogram.
constexpr size_t kHistBuckets = 32;
/// A point (eq) query is assumed to match this share of its bucket.
constexpr double kHistPointShare = 0.125;

/// Fallback selectivity for predicates CountPredicateMatches cannot answer
/// exactly (typically a numeric comparison over mixed-type content, where
/// the numeric family stays unbuilt): estimate from a cheap equi-width
/// histogram over the numeric interpretation of the sorted value family.
/// Unparseable entries count toward the population but can never satisfy a
/// numeric comparison. nullopt when no family data exists at all — the
/// caller keeps its flat default.
std::optional<double> HistogramSelectivity(const DocumentIndexes& idx,
                                           const std::vector<int32_t>& frontier,
                                           const IndexPredicate& pred) {
  if (pred.positional || !pred.operand.IsNumeric()) return std::nullopt;
  const Document& doc = idx.doc();
  uint32_t tname = doc.FindNameId(pred.target.uri, pred.target.local);
  if (tname == kNoName) return 0.0;  // Never satisfied.
  NodeKind tkind =
      pred.target.attribute ? NodeKind::kAttribute : NodeKind::kElement;

  std::vector<double> vals;
  size_t population = 0;
  bool any_family = false;
  for (int32_t s : frontier) {
    int32_t t = idx.FindChild(s, tkind, tname);
    if (t < 0) continue;
    const DocumentIndexes::ValuePostings* vp = idx.values(t);
    if (vp == nullptr) continue;
    if (!vp->by_number.empty()) {
      any_family = true;
      population += vp->by_number.size();
      for (const auto& [d, n] : vp->by_number) {
        if (!std::isnan(d)) vals.push_back(d);
      }
    } else if (!vp->by_string.empty()) {
      any_family = true;
      population += vp->by_string.size();
      for (const auto& [sv, n] : vp->by_string) {
        const char* begin = sv.c_str();
        char* end = nullptr;
        double d = std::strtod(begin, &end);
        if (end != begin && *end == '\0' && !std::isnan(d)) {
          vals.push_back(d);
        }
      }
    }
  }
  if (!any_family) return std::nullopt;
  if (population == 0) return 0.0;
  if (vals.empty()) return 0.0;  // Nothing numeric: a match is impossible.

  auto [lo_it, hi_it] = std::minmax_element(vals.begin(), vals.end());
  double lo = *lo_it;
  double hi = *hi_it;
  double v = pred.operand.NumericAsDouble();
  if (std::isnan(v)) return pred.op == CompOp::kGenNe ? 1.0 : 0.0;

  double n = static_cast<double>(vals.size());
  double eq = 0;
  double below = 0;  // Strictly-less estimate.
  if (hi <= lo) {
    // Degenerate single-value family: the comparison is decidable.
    eq = v == lo ? n : 0;
    below = v > lo ? n : 0;
  } else {
    double width = (hi - lo) / static_cast<double>(kHistBuckets);
    std::vector<double> hist(kHistBuckets, 0);
    for (double d : vals) {
      auto b = static_cast<size_t>((d - lo) / width);
      hist[std::min(b, kHistBuckets - 1)] += 1.0;
    }
    if (v < lo) {
      below = 0;
    } else if (v > hi) {
      below = n;
    } else {
      auto b = std::min(static_cast<size_t>((v - lo) / width),
                        kHistBuckets - 1);
      for (size_t i = 0; i < b; ++i) below += hist[i];
      double frac = (v - (lo + static_cast<double>(b) * width)) / width;
      below += hist[b] * std::clamp(frac, 0.0, 1.0);
      eq = hist[b] * kHistPointShare;
    }
  }

  double matched = 0;
  switch (pred.op) {
    case CompOp::kGenEq: matched = eq; break;
    case CompOp::kGenNe: matched = n - eq; break;
    case CompOp::kGenLt: matched = below; break;
    case CompOp::kGenLe: matched = below + eq; break;
    case CompOp::kGenGt: matched = n - below - eq; break;
    case CompOp::kGenGe: matched = n - below; break;
    default: return std::nullopt;
  }
  return std::clamp(matched / static_cast<double>(population), 0.0, 1.0);
}

/// Shared chain walk: synopsis frontiers, exact per-step populations, and
/// estimated rows after predicates.
struct ChainWalk {
  std::vector<std::vector<int32_t>> frontier;  // frontier[i] before step i.
  std::vector<double> population;              // N[i]: exact count at depth i.
  std::vector<double> rows;                    // est[i]: estimated rows.
  bool exact = true;
  bool index_applicable = true;
  double predicate_probe_cost = 0;
};

ChainWalk WalkChain(const DocumentIndexes& idx, const IndexQuery& q) {
  const size_t k = q.steps.size();
  ChainWalk w;
  w.frontier.resize(k + 1);
  w.population.assign(k + 1, 1.0);
  w.rows.assign(k + 1, 1.0);
  w.frontier[0] = {0};
  const size_t pstep = q.HasPredicates() ? q.PredicateStep() : k;
  for (size_t i = 0; i < k; ++i) {
    w.frontier[i + 1] = ResolveSynopsisStep(idx, w.frontier[i], q.steps[i]);
    w.population[i + 1] = static_cast<double>(
        CountSynopsisPostings(idx, w.frontier[i + 1]));
    // Steps after a predicate scale by the surviving fraction (the synopsis
    // keeps resolving the structure exactly; only the predicate's
    // reduction is statistical).
    double ratio = w.population[i] > 0
                       ? std::min(1.0, w.rows[i] / w.population[i])
                       : 0.0;
    w.rows[i + 1] = i < pstep ? w.population[i + 1]
                              : w.population[i + 1] * ratio;
    if (q.HasPredicates() && pstep == i) {
      double rows = w.rows[i + 1];
      for (const IndexPredicate& pred : q.predicates) {
        w.exact = false;
        if (pred.positional) {
          // At most one qualifying node per candidate parent; positions
          // past the first halve again (fewer parents have that many
          // children).
          double parents = q.steps[i].descendant
                               ? std::max(1.0, rows / 2.0)
                               : std::max(1.0, std::min(w.population[i], rows));
          rows = std::min(rows, parents);
          if (pred.operand.NumericAsDouble() > 1.0) rows *= 0.5;
          continue;
        }
        std::optional<size_t> m =
            CountPredicateMatches(idx, w.frontier[i + 1], pred);
        if (!m.has_value()) {
          // Unprovable predicate: the index cannot answer this chain, but
          // the cardinality estimate should still be data-driven when the
          // value family has entries — the equi-width histogram replaces
          // the old flat 0.25 default (kept only when there is no family
          // data to estimate from).
          w.index_applicable = false;
          rows *= HistogramSelectivity(idx, w.frontier[i + 1], pred)
                      .value_or(0.25);
          continue;
        }
        double sel = w.population[i + 1] > 0
                         ? std::min(1.0, static_cast<double>(*m) /
                                             w.population[i + 1])
                         : 0.0;
        rows *= sel;
        // One logarithmic probe into the sorted family plus the matched
        // run.
        w.predicate_probe_cost +=
            Log2(w.population[i + 1]) + static_cast<double>(*m);
      }
      w.rows[i + 1] = rows;
    }
  }
  return w;
}

CardEstimate CardFromWalk(const ChainWalk& w) {
  CardEstimate card;
  card.exact = w.exact;
  double rows = w.rows.back();
  if (!(rows >= 0.0)) rows = 0.0;
  card.rows = w.exact ? static_cast<uint64_t>(w.population.back())
                      : static_cast<uint64_t>(std::llround(rows));
  return card;
}

}  // namespace

JoinChainShape ClassifyJoinChain(const IndexQuery& q) {
  const size_t k = q.steps.size();
  JoinChainShape shape;
  shape.joinable = !q.HasPredicates() && k >= 1;
  shape.elem_steps = k;
  for (size_t i = 0; i < k && shape.joinable; ++i) {
    if (q.steps[i].attribute) {
      if (i + 1 == k && !q.steps[i].descendant) {
        shape.trailing_attr = true;
        shape.elem_steps = k - 1;
      } else {
        shape.joinable = false;
      }
    }
  }
  if (shape.elem_steps == 0) shape.joinable = false;
  return shape;
}

CardEstimate EstimateCardinality(const DocumentIndexes& idx,
                                 const IndexQuery& q) {
  return CardFromWalk(WalkChain(idx, q));
}

AccessPathCosts EstimateAccessPathCosts(const DocumentIndexes& idx,
                                        const IndexQuery& q,
                                        CardEstimate* card_out) {
  const Document& doc = idx.doc();
  const size_t k = q.steps.size();
  ChainWalk w = WalkChain(idx, q);
  if (card_out != nullptr) *card_out = CardFromWalk(w);
  AccessPathCosts out;
  const size_t pstep = q.HasPredicates() ? q.PredicateStep() : k;
  const std::vector<double>& N = w.population;
  const std::vector<double>& est = w.rows;

  // --- Navigation: per-step scans of the regions the engine would visit.
  // Descendant steps sweep whole subtrees (exact element populations from
  // the synopsis, scaled by the document's text-node expansion factor);
  // child steps scan the frontier's direct children; attribute steps touch
  // each candidate's attribute list.
  std::vector<uint64_t> sub = SubtreePostings(idx);
  double total_postings = static_cast<double>(sub.empty() ? 0 : sub[0]);
  double expansion =
      total_postings > 0
          ? std::max(1.0, static_cast<double>(doc.NumNodes()) / total_postings)
          : 1.0;
  double nav = 0;
  for (size_t i = 0; i < k; ++i) {
    const IndexStep& st = q.steps[i];
    double scale =
        N[i] > 0 ? std::min(1.0, est[i] / N[i]) : 0.0;
    if (st.attribute && !st.descendant) {
      nav += est[i] * 2.0 + est[i + 1];
    } else if (st.descendant) {
      double subtotal = 0;
      for (int32_t s : w.frontier[i]) subtotal += static_cast<double>(sub[s]);
      nav += subtotal * expansion * scale + est[i + 1];
    } else {
      double kids = 0;
      for (int32_t s : w.frontier[i]) {
        for (int32_t c : idx.synopsis_node(s).children) {
          kids += static_cast<double>(idx.postings(c).size());
        }
      }
      nav += kids * expansion * scale + est[i + 1];
    }
    if (q.HasPredicates() && pstep == i) {
      // Per-candidate predicate evaluation: scan the target children and
      // compare.
      nav += N[i + 1] * 8.0;
    }
  }
  out.nav = nav;

  // --- Direct index answer: synopsis traversal (frontier sizes, tiny) +
  // the answer materialization. A multi-path frontier pays a full
  // concat-and-sort of the merged postings; a single-path frontier returns
  // its posting list as-is. Predicates pay the range probes, the
  // parent-mapping sort, and plain navigation for any steps after the
  // materialization point.
  double index_cost = 0;
  for (size_t i = 1; i <= k; ++i) {
    index_cost += static_cast<double>(w.frontier[i].size());
  }
  if (!q.HasPredicates()) {
    index_cost +=
        w.frontier[k].size() <= 1 ? N[k] : N[k] * Log2(N[k]);
  } else {
    index_cost += w.predicate_probe_cost;
    double rows_p = std::max(1.0, est[pstep + 1]);
    index_cost += rows_p * Log2(rows_p) + rows_p;
    for (size_t i = pstep + 1; i < k; ++i) {
      index_cost += est[i] * (q.steps[i].descendant ? 16.0 : 8.0) + est[i + 1];
    }
  }
  out.index = index_cost;
  out.index_applicable = w.index_applicable;

  // --- Join strategies: predicate-free element chains only (an optional
  // trailing attribute step navigates from the joined element set).
  JoinChainShape shape = ClassifyJoinChain(q);
  const size_t elem_steps = shape.elem_steps;
  const bool trailing_attr = shape.trailing_attr;

  if (shape.joinable) {
    // Binary structural-join cascade: each step is one stack semi-join
    // scanning the previous result plus the full (pre-sorted, cached)
    // per-tag posting list.
    std::unordered_map<uint32_t, uint64_t> tag_memo;
    double sjoin = 1.0;
    for (size_t i = 0; i < elem_steps; ++i) {
      uint32_t name_id = doc.FindNameId(q.steps[i].uri, q.steps[i].local);
      sjoin += N[i] + static_cast<double>(TagTotal(idx, name_id, &tag_memo));
    }
    if (trailing_attr) sjoin += N[elem_steps] * 2.0;
    sjoin += N[k];
    out.sjoin = sjoin;
    out.sjoin_applicable = true;

    // Holistic twig join: one synchronized pass over the lists — the exact
    // first-step postings (index-backed, paying the same merge a direct
    // index answer would for that step) plus the full per-tag lists.
    if (elem_steps >= 2) {
      double twig =
          w.frontier[1].size() <= 1 ? N[1] : N[1] * Log2(N[1]);
      twig += N[1];
      for (size_t i = 1; i < elem_steps; ++i) {
        uint32_t name_id = doc.FindNameId(q.steps[i].uri, q.steps[i].local);
        twig += static_cast<double>(TagTotal(idx, name_id, &tag_memo));
      }
      if (trailing_attr) twig += N[elem_steps] * 2.0;
      twig += N[k];
      out.twig = twig;
      out.twig_applicable = true;
    }
  }
  return out;
}

}  // namespace xqp
