#include "xmark/queries.h"

namespace xqp {

const std::vector<XMarkQuery>& XMarkQuerySet() {
  static const std::vector<XMarkQuery>* kQueries = new std::vector<XMarkQuery>{
      {"Q1", "exact match on person id",
       "for $b in doc(\"xmark.xml\")/site/people/person[@id = \"person0\"] "
       "return string($b/name)"},

      {"Q2", "first bid of each open auction",
       "for $b in doc(\"xmark.xml\")/site/open_auctions/open_auction "
       "where exists($b/bidder) "
       "return <increase>{string($b/bidder[1]/increase)}</increase>"},

      {"Q3", "auctions whose first bid doubled (positional access)",
       "for $b in doc(\"xmark.xml\")/site/open_auctions/open_auction "
       "where count($b/bidder) >= 2 and "
       "  $b/bidder[1]/increase * 2 <= $b/bidder[last()]/increase "
       "return <increase first=\"{string($b/bidder[1]/increase)}\" "
       "last=\"{string($b/bidder[last()]/increase)}\"/>"},

      {"Q4", "document order between bidders",
       "for $b in doc(\"xmark.xml\")/site/open_auctions/open_auction "
       "where some $pr1 in $b/bidder/personref[@person = \"person3\"], "
       "          $pr2 in $b/bidder/personref[@person = \"person5\"] "
       "      satisfies $pr1 << $pr2 "
       "return <history>{string($b/reserve)}</history>"},

      {"Q5", "closed auctions above a price",
       "count(for $i in doc(\"xmark.xml\")/site/closed_auctions/closed_auction "
       "where $i/price >= 40 return $i/price)"},

      {"Q6", "items per region (descendant count)",
       "for $b in doc(\"xmark.xml\")/site/regions return count($b//item)"},

      {"Q7", "count several element kinds",
       "for $p in doc(\"xmark.xml\")/site "
       "return count($p//description) + count($p//annotation) + "
       "count($p//emailaddress)"},

      {"Q8", "join: purchases per person",
       "for $p in doc(\"xmark.xml\")/site/people/person "
       "let $a := for $t in doc(\"xmark.xml\")/site/closed_auctions/"
       "closed_auction where $t/buyer/@person = $p/@id return $t "
       "return <item person=\"{string($p/name)}\">{count($a)}</item>"},

      {"Q9", "join: items a person bought",
       "for $p in doc(\"xmark.xml\")/site/people/person "
       "let $a := for $t in doc(\"xmark.xml\")/site/closed_auctions/"
       "closed_auction "
       "  let $n := for $t2 in doc(\"xmark.xml\")/site/regions//item "
       "            where $t/itemref/@item = $t2/@id return $t2 "
       "  where $p/@id = $t/buyer/@person "
       "  return <item>{string($n/name)}</item> "
       "return <person name=\"{string($p/name)}\">{$a}</person>"},

      {"Q10", "grouping by interest category (distinct-values emulation)",
       "for $i in distinct-values(doc(\"xmark.xml\")/site/people/person/"
       "profile/interest/@category) "
       "let $p := for $t in doc(\"xmark.xml\")/site/people/person "
       "          where $t/profile/interest/@category = $i "
       "          return <personne>{string($t/name)}</personne> "
       "return <categorie><id>{$i}</id>{$p}</categorie>"},

      {"Q11", "value join with arithmetic (income vs initial)",
       "for $p in doc(\"xmark.xml\")/site/people/person "
       "let $l := for $i in doc(\"xmark.xml\")/site/open_auctions/"
       "open_auction/initial "
       "          where $p/profile/@income > 5000 * $i return $i "
       "return <items name=\"{string($p/name)}\">{count($l)}</items>"},

      {"Q12", "value join restricted to high income",
       "for $p in doc(\"xmark.xml\")/site/people/person "
       "let $l := for $i in doc(\"xmark.xml\")/site/open_auctions/"
       "open_auction/initial "
       "          where $p/profile/@income > 5000 * $i return $i "
       "where $p/profile/@income > 50000 "
       "return <items person=\"{string($p/name)}\">{count($l)}</items>"},

      {"Q13", "reconstruction of australian items",
       "for $i in doc(\"xmark.xml\")/site/regions/australia/item "
       "return <item name=\"{string($i/name)}\">{$i/description}</item>"},

      {"Q14", "full-text-ish scan (contains)",
       "for $i in doc(\"xmark.xml\")/site//item "
       "where contains(string($i/description), \"gold\") "
       "return string($i/name)"},

      {"Q15", "long path expression",
       "for $a in doc(\"xmark.xml\")/site/closed_auctions/closed_auction/"
       "annotation/description/parlist/listitem/text/keyword "
       "return <text>{string($a)}</text>"},

      {"Q16", "long path with existential check",
       "for $a in doc(\"xmark.xml\")/site/closed_auctions/closed_auction "
       "where exists($a/annotation/description/parlist/listitem/text/keyword) "
       "return <person id=\"{string($a/seller/@person)}\"/>"},

      {"Q17", "people without a homepage",
       "for $p in doc(\"xmark.xml\")/site/people/person "
       "where empty($p/homepage) "
       "return <person name=\"{string($p/name)}\"/>"},

      {"Q18", "user-defined function",
       "declare function local:convert($v) { 2.20371 * $v }; "
       "for $i in doc(\"xmark.xml\")/site/open_auctions/open_auction "
       "return local:convert(zero-or-one($i/reserve))"},

      {"Q19", "order by (full sort)",
       "for $b in doc(\"xmark.xml\")/site/regions//item "
       "let $k := string($b/name) "
       "order by $k "
       "return <item name=\"{$k}\">{string($b/location)}</item>"},

      {"Q20", "aggregation buckets",
       "<result>"
       "<preferred>{count(doc(\"xmark.xml\")/site/people/person/profile["
       "@income >= 50000])}</preferred>"
       "<standard>{count(doc(\"xmark.xml\")/site/people/person/profile["
       "@income < 50000 and @income >= 30000])}</standard>"
       "<challenge>{count(doc(\"xmark.xml\")/site/people/person/profile["
       "@income < 30000])}</challenge>"
       "<na>{count(for $p in doc(\"xmark.xml\")/site/people/person "
       "where empty($p/profile/@income) return $p)}</na>"
       "</result>"},
  };
  return *kQueries;
}

const XMarkQuery* FindXMarkQuery(const std::string& id) {
  for (const XMarkQuery& q : XMarkQuerySet()) {
    if (id == q.id) return &q;
  }
  return nullptr;
}

}  // namespace xqp
