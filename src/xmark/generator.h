#ifndef XQP_XMARK_GENERATOR_H_
#define XQP_XMARK_GENERATOR_H_

#include <memory>
#include <string>

#include "base/status.h"
#include "xml/document.h"

namespace xqp {

/// Options for the XMark-style auction data generator. This is the
/// substitute for the public XMark xmlgen tool (see DESIGN.md): it emits
/// the same auction-site schema shape — regions/items with mixed-content
/// descriptions, people with optional profile parts, open auctions with
/// bidder lists, closed auctions — deterministically from a seed.
/// scale = 1.0 corresponds to roughly 1/10th of XMark's f=1 entity counts
/// (about 2175 items, 2550 people, 1200 open and 975 closed auctions).
struct XMarkOptions {
  double scale = 0.1;
  uint64_t seed = 42;
  /// Emit <bold>/<keyword>/<emph> markup inside descriptions.
  bool description_markup = true;
};

/// Entity counts derived from the scale factor.
struct XMarkCounts {
  size_t categories;
  size_t items;
  size_t people;
  size_t open_auctions;
  size_t closed_auctions;
};
XMarkCounts CountsForScale(double scale);

/// Generates the XML text of one auction document.
std::string GenerateXMarkXml(const XMarkOptions& options);

/// Generates and parses in one step.
Result<std::shared_ptr<Document>> GenerateXMarkDocument(
    const XMarkOptions& options, const ParseOptions& parse_options = {});

}  // namespace xqp

#endif  // XQP_XMARK_GENERATOR_H_
