#ifndef XQP_XMARK_QUERIES_H_
#define XQP_XMARK_QUERIES_H_

#include <string>
#include <vector>

namespace xqp {

/// One XMark benchmark query, adapted to this engine's XQuery subset. The
/// document is addressed as doc("xmark.xml"); register the generated
/// document under that URI before running. Queries whose original relies on
/// unsupported features carry a note (Q10's group-by is emulated with
/// distinct-values; the paper itself lists "group by" under "missing
/// functionalities").
struct XMarkQuery {
  const char* id;
  const char* title;
  const char* text;
};

/// The adapted XMark query set (Q1–Q20, minus gaps documented in
/// EXPERIMENTS.md).
const std::vector<XMarkQuery>& XMarkQuerySet();

/// Returns the query with the given id ("Q1"), or nullptr.
const XMarkQuery* FindXMarkQuery(const std::string& id);

}  // namespace xqp

#endif  // XQP_XMARK_QUERIES_H_
