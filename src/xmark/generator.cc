#include "xmark/generator.h"

#include <algorithm>

#include "base/string_util.h"

namespace xqp {

namespace {

constexpr const char* kWords[] = {
    "gold",      "silver",   "antique", "rare",     "vintage",  "mint",
    "condition", "original", "signed",  "limited",  "edition",  "classic",
    "estate",    "auction",  "reserve", "shipping", "payment",  "offer",
    "bid",       "bargain",  "quality", "genuine",  "certified", "museum",
    "fine",      "art",      "bronze",  "marble",   "ceramic",  "wooden",
    "leather",   "velvet",   "crystal", "pearl",    "diamond",  "emerald",
    "collection", "catalog", "history", "century",  "dynasty",  "empire",
    "royal",     "imperial", "ancient", "modern",   "abstract", "ornate",
    "delicate",  "massive",  "tiny",    "huge",     "splendid", "curious",
    "whose",     "nature",   "disposed", "amphibian", "politics", "experience",
};
constexpr size_t kNumWords = sizeof(kWords) / sizeof(kWords[0]);

constexpr const char* kFirstNames[] = {
    "Ronald", "Serge",  "Daniela", "Divesh", "Jerome",  "Mary",   "Dan",
    "Alon",   "Nick",   "Gerome",  "Laks",   "Jignesh", "Yanlei", "Michael",
    "Sihem",  "Wenfei", "Peter",   "Susan",  "Tova",    "Elke",
};
constexpr const char* kLastNames[] = {
    "Laing",    "Abiteboul", "Florescu", "Srivastava", "Simeon", "Fernandez",
    "Suciu",    "Halevy",    "Koudas",   "Miklau",     "Lakshmanan", "Patel",
    "Diao",     "Franklin",  "AmerYahia", "Fan",       "Buneman", "Davidson",
    "Milo",     "Rundensteiner",
};
constexpr const char* kCities[] = {
    "Paris",  "Berlin",  "Tokyo",  "Sydney", "Toronto", "Lagos",
    "Mumbai", "Seattle", "Dublin", "Lisbon", "Prague",  "Vienna",
};
constexpr const char* kCountries[] = {
    "France", "Germany", "Japan", "Australia", "Canada", "Nigeria",
    "India",  "United States", "Ireland", "Portugal", "Czechia", "Austria",
};
constexpr const char* kRegions[] = {"africa",   "asia",     "australia",
                                    "europe",   "namerica", "samerica"};
constexpr double kRegionWeights[] = {0.10, 0.20, 0.10, 0.30, 0.25, 0.05};

class Generator {
 public:
  explicit Generator(const XMarkOptions& options)
      : options_(options),
        rng_(options.seed),
        counts_(CountsForScale(options.scale)) {
    out_.reserve(1 << 20);
  }

  std::string Run() {
    out_ += "<?xml version=\"1.0\" standalone=\"yes\"?>\n";
    out_ += "<site>\n";
    Regions();
    Categories();
    CatGraph();
    People();
    OpenAuctions();
    ClosedAuctions();
    out_ += "</site>\n";
    return std::move(out_);
  }

 private:
  const char* Word() { return kWords[rng_.Below(kNumWords)]; }

  void Text(size_t min_words, size_t max_words) {
    size_t n = static_cast<size_t>(rng_.Range(min_words, max_words));
    for (size_t i = 0; i < n; ++i) {
      if (i > 0) out_ += ' ';
      out_ += Word();
    }
  }

  void Description() {
    out_ += "<description>";
    if (options_.description_markup && rng_.Below(2) == 0) {
      out_ += "<parlist><listitem><text>";
      Text(6, 20);
      if (rng_.Below(3) == 0) {
        out_ += " <bold>";
        Text(1, 3);
        out_ += "</bold> ";
        Text(2, 6);
      }
      if (rng_.Below(3) == 0) {
        out_ += " <keyword>";
        Text(1, 2);
        out_ += "</keyword> ";
        Text(1, 4);
      }
      if (rng_.Below(4) == 0) {
        out_ += " <emph>";
        Text(1, 2);
        out_ += "</emph>";
      }
      out_ += "</text></listitem></parlist>";
    } else {
      out_ += "<text>";
      Text(8, 40);
      out_ += "</text>";
    }
    out_ += "</description>";
  }

  void Regions() {
    out_ += "<regions>\n";
    size_t item_id = 0;
    for (size_t r = 0; r < 6; ++r) {
      out_ += "<";
      out_ += kRegions[r];
      out_ += ">\n";
      size_t count = static_cast<size_t>(
          static_cast<double>(counts_.items) * kRegionWeights[r]);
      count = std::max<size_t>(count, 1);
      for (size_t i = 0; i < count; ++i, ++item_id) {
        Item(item_id, kRegions[r]);
      }
      out_ += "</";
      out_ += kRegions[r];
      out_ += ">\n";
    }
    out_ += "</regions>\n";
    total_items_ = item_id;
  }

  void Item(size_t id, const char* region) {
    out_ += "<item id=\"item" + std::to_string(id) + "\">";
    out_ += "<location>";
    out_ += kCountries[rng_.Below(12)];
    out_ += "</location>";
    out_ += "<quantity>" + std::to_string(rng_.Range(1, 5)) + "</quantity>";
    out_ += "<name>";
    Text(2, 4);
    out_ += "</name>";
    out_ += "<payment>Creditcard</payment>";
    Description();
    out_ += "<shipping>Will ship internationally</shipping>";
    size_t cats = static_cast<size_t>(rng_.Range(1, 3));
    for (size_t c = 0; c < cats; ++c) {
      out_ += "<incategory category=\"category" +
              std::to_string(rng_.Below(counts_.categories)) + "\"/>";
    }
    if (rng_.Below(4) == 0) {
      out_ += "<mailbox><mail><from>";
      Text(1, 2);
      out_ += "</from><to>";
      Text(1, 2);
      out_ += "</to><date>" + Date() + "</date><text>";
      Text(4, 16);
      out_ += "</text></mail></mailbox>";
    }
    (void)region;
    out_ += "</item>\n";
  }

  std::string Date() {
    return std::to_string(rng_.Range(1, 12)) + "/" +
           std::to_string(rng_.Range(1, 28)) + "/" +
           std::to_string(rng_.Range(1998, 2001));
  }

  void Categories() {
    out_ += "<categories>\n";
    for (size_t c = 0; c < counts_.categories; ++c) {
      out_ += "<category id=\"category" + std::to_string(c) + "\"><name>";
      Text(1, 3);
      out_ += "</name>";
      Description();
      out_ += "</category>\n";
    }
    out_ += "</categories>\n";
  }

  void CatGraph() {
    out_ += "<catgraph>\n";
    size_t edges = counts_.categories;
    for (size_t e = 0; e < edges; ++e) {
      out_ += "<edge from=\"category" +
              std::to_string(rng_.Below(counts_.categories)) + "\" to=\"category" +
              std::to_string(rng_.Below(counts_.categories)) + "\"/>\n";
    }
    out_ += "</catgraph>\n";
  }

  void People() {
    out_ += "<people>\n";
    for (size_t p = 0; p < counts_.people; ++p) {
      out_ += "<person id=\"person" + std::to_string(p) + "\">";
      std::string first = kFirstNames[rng_.Below(20)];
      std::string last = kLastNames[rng_.Below(20)];
      out_ += "<name>" + first + " " + last + "</name>";
      out_ += "<emailaddress>mailto:" + first + "." + last + "@example" +
              std::to_string(p % 97) + ".com</emailaddress>";
      if (rng_.Below(2) == 0) {
        out_ += "<phone>+1 (" + std::to_string(rng_.Range(100, 999)) + ") " +
                std::to_string(rng_.Range(1000000, 9999999)) + "</phone>";
      }
      if (rng_.Below(2) == 0) {
        out_ += "<address><street>" + std::to_string(rng_.Range(1, 99)) + " ";
        out_ += Word();
        out_ += " St</street><city>";
        out_ += kCities[rng_.Below(12)];
        out_ += "</city><country>";
        out_ += kCountries[rng_.Below(12)];
        out_ += "</country><zipcode>" + std::to_string(rng_.Range(10000, 99999)) +
                "</zipcode></address>";
      }
      if (rng_.Below(3) == 0) {
        out_ += "<homepage>http://www.example" + std::to_string(p % 97) +
                ".com/~" + last + "</homepage>";
      }
      if (rng_.Below(3) == 0) {
        out_ += "<creditcard>" + std::to_string(rng_.Range(1000, 9999)) + " " +
                std::to_string(rng_.Range(1000, 9999)) + " " +
                std::to_string(rng_.Range(1000, 9999)) + " " +
                std::to_string(rng_.Range(1000, 9999)) + "</creditcard>";
      }
      if (rng_.Below(2) == 0) {
        out_ += "<profile income=\"" +
                FormatDouble(static_cast<double>(rng_.Range(9876, 99999))) +
                "\">";
        size_t interests = rng_.Below(4);
        for (size_t i = 0; i < interests; ++i) {
          out_ += "<interest category=\"category" +
                  std::to_string(rng_.Below(counts_.categories)) + "\"/>";
        }
        if (rng_.Below(2) == 0) out_ += "<education>Graduate School</education>";
        if (rng_.Below(2) == 0) {
          out_ += std::string("<gender>") +
                  (rng_.Below(2) == 0 ? "male" : "female") + "</gender>";
        }
        out_ += std::string("<business>") + (rng_.Below(2) == 0 ? "Yes" : "No") +
                "</business>";
        if (rng_.Below(2) == 0) {
          out_ += "<age>" + std::to_string(rng_.Range(18, 90)) + "</age>";
        }
        out_ += "</profile>";
      }
      if (rng_.Below(4) == 0) {
        size_t watches = static_cast<size_t>(rng_.Range(1, 3));
        out_ += "<watches>";
        for (size_t w = 0; w < watches; ++w) {
          out_ += "<watch open_auction=\"open_auction" +
                  std::to_string(rng_.Below(counts_.open_auctions)) + "\"/>";
        }
        out_ += "</watches>";
      }
      out_ += "</person>\n";
    }
    out_ += "</people>\n";
  }

  void OpenAuctions() {
    out_ += "<open_auctions>\n";
    for (size_t a = 0; a < counts_.open_auctions; ++a) {
      out_ += "<open_auction id=\"open_auction" + std::to_string(a) + "\">";
      double initial = static_cast<double>(rng_.Range(1, 200)) +
                       static_cast<double>(rng_.Below(100)) / 100.0;
      out_ += "<initial>" + FormatDouble(initial) + "</initial>";
      if (rng_.Below(2) == 0) {
        out_ += "<reserve>" + FormatDouble(initial * 1.5) + "</reserve>";
      }
      size_t bidders = rng_.Below(6);
      double current = initial;
      for (size_t b = 0; b < bidders; ++b) {
        double increase = static_cast<double>(rng_.Range(1, 10)) * 1.5;
        current += increase;
        out_ += "<bidder><date>" + Date() + "</date><time>" +
                std::to_string(rng_.Range(0, 23)) + ":" +
                std::to_string(rng_.Range(10, 59)) + ":00</time>" +
                "<personref person=\"person" +
                std::to_string(rng_.Below(counts_.people)) + "\"/>" +
                "<increase>" + FormatDouble(increase) + "</increase></bidder>";
      }
      out_ += "<current>" + FormatDouble(current) + "</current>";
      if (rng_.Below(2) == 0) out_ += "<privacy>Yes</privacy>";
      out_ += "<itemref item=\"item" + std::to_string(rng_.Below(total_items_)) +
              "\"/>";
      out_ += "<seller person=\"person" +
              std::to_string(rng_.Below(counts_.people)) + "\"/>";
      Annotation();
      out_ += "<quantity>" + std::to_string(rng_.Range(1, 5)) + "</quantity>";
      out_ += std::string("<type>") +
              (rng_.Below(2) == 0 ? "Regular" : "Featured") + "</type>";
      out_ += "<interval><start>" + Date() + "</start><end>" + Date() +
              "</end></interval>";
      out_ += "</open_auction>\n";
    }
    out_ += "</open_auctions>\n";
  }

  void Annotation() {
    out_ += "<annotation><author person=\"person" +
            std::to_string(rng_.Below(counts_.people)) + "\"/>";
    Description();
    out_ += "<happiness>" + std::to_string(rng_.Range(1, 10)) +
            "</happiness></annotation>";
  }

  void ClosedAuctions() {
    out_ += "<closed_auctions>\n";
    for (size_t a = 0; a < counts_.closed_auctions; ++a) {
      out_ += "<closed_auction>";
      out_ += "<seller person=\"person" +
              std::to_string(rng_.Below(counts_.people)) + "\"/>";
      out_ += "<buyer person=\"person" +
              std::to_string(rng_.Below(counts_.people)) + "\"/>";
      out_ += "<itemref item=\"item" + std::to_string(rng_.Below(total_items_)) +
              "\"/>";
      out_ += "<price>" +
              FormatDouble(static_cast<double>(rng_.Range(1, 400)) +
                           static_cast<double>(rng_.Below(100)) / 100.0) +
              "</price>";
      out_ += "<date>" + Date() + "</date>";
      out_ += "<quantity>" + std::to_string(rng_.Range(1, 5)) + "</quantity>";
      out_ += std::string("<type>") +
              (rng_.Below(2) == 0 ? "Regular" : "Featured") + "</type>";
      Annotation();
      out_ += "</closed_auction>\n";
    }
    out_ += "</closed_auctions>\n";
  }

  XMarkOptions options_;
  SplitMix64 rng_;
  XMarkCounts counts_;
  std::string out_;
  size_t total_items_ = 1;
};

}  // namespace

XMarkCounts CountsForScale(double scale) {
  auto at_least = [](double v, size_t lo) {
    return std::max<size_t>(static_cast<size_t>(v), lo);
  };
  XMarkCounts counts;
  counts.categories = at_least(100 * scale, 4);
  counts.items = at_least(2175 * scale, 60);
  counts.people = at_least(2550 * scale, 75);
  counts.open_auctions = at_least(1200 * scale, 30);
  counts.closed_auctions = at_least(975 * scale, 25);
  return counts;
}

std::string GenerateXMarkXml(const XMarkOptions& options) {
  Generator generator(options);
  return generator.Run();
}

Result<std::shared_ptr<Document>> GenerateXMarkDocument(
    const XMarkOptions& options, const ParseOptions& parse_options) {
  return Document::Parse(GenerateXMarkXml(options), parse_options);
}

}  // namespace xqp
