#ifndef XQP_QUERY_STATIC_CONTEXT_H_
#define XQP_QUERY_STATIC_CONTEXT_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "base/status.h"
#include "query/expr.h"
#include "query/sequence_type.h"

namespace xqp {

/// Well-known namespace URIs.
inline constexpr std::string_view kFnNamespace =
    "http://www.w3.org/2005/xpath-functions";
inline constexpr std::string_view kXsNamespace =
    "http://www.w3.org/2001/XMLSchema";
inline constexpr std::string_view kXdtNamespace =
    "http://www.w3.org/2005/xpath-datatypes";
inline constexpr std::string_view kLocalNamespace =
    "http://www.w3.org/2005/xquery-local-functions";

/// The static context of query compilation (paper slide "Static context"):
/// in-scope namespaces, default element/function namespaces, and the
/// boundary-space policy. Populated by the prolog and consulted during
/// parsing for QName resolution.
class StaticContext {
 public:
  StaticContext();

  Status DeclareNamespace(const std::string& prefix, const std::string& uri);

  /// Resolves a lexical prefix ("" = default element namespace when
  /// `use_default_element_ns`). Unknown prefixes are static errors.
  Result<std::string> ResolvePrefix(std::string_view prefix,
                                    bool use_default_element_ns) const;

  const std::string& default_element_ns() const { return default_element_ns_; }
  void set_default_element_ns(std::string uri) {
    default_element_ns_ = std::move(uri);
  }
  const std::string& default_function_ns() const {
    return default_function_ns_;
  }
  void set_default_function_ns(std::string uri) {
    default_function_ns_ = std::move(uri);
  }

  bool boundary_space_preserve() const { return boundary_space_preserve_; }
  void set_boundary_space_preserve(bool preserve) {
    boundary_space_preserve_ = preserve;
  }

 private:
  std::map<std::string, std::string, std::less<>> namespaces_;
  std::string default_element_ns_;
  std::string default_function_ns_;
  bool boundary_space_preserve_ = false;
};

/// A user-defined function from the prolog.
struct UserFunction {
  QName name;
  std::vector<QName> params;
  std::vector<SequenceType> param_types;
  SequenceType return_type = SequenceType::AnyItems();
  ExprPtr body;  // Null for "external" functions.
  /// Filled by normalization: slots of the parameters within the function's
  /// frame and the frame size.
  std::vector<int> param_slots;
  int num_slots = 0;
  /// Inlining metadata (set by analysis).
  bool recursive = false;
};

/// A global variable declaration ("declare variable $x ...").
struct GlobalVariable {
  QName name;
  SequenceType type = SequenceType::AnyItems();
  bool has_type = false;
  ExprPtr init;  // Null for "external" variables.
  int slot = -1;
  /// Frame size needed to evaluate `init` (locals bound inside it).
  int num_slots = 0;
};

/// Output of the parser: prolog declarations plus the main expression.
/// Normalization then resolves names and assigns variable slots in place.
struct ParsedModule {
  StaticContext sctx;
  std::vector<UserFunction> functions;
  std::vector<GlobalVariable> globals;
  ExprPtr body;
  /// Frame size of the main expression (assigned by normalization).
  int num_slots = 0;
};

}  // namespace xqp

#endif  // XQP_QUERY_STATIC_CONTEXT_H_
