#include "query/normalize.h"

#include <unordered_map>
#include <vector>

#include "exec/functions.h"
#include "query/expr.h"

namespace xqp {

namespace {

/// Lexical scope for variable resolution within one frame.
struct ScopeEntry {
  QName name;
  int slot;
};

class Normalizer {
 public:
  explicit Normalizer(ParsedModule* module) : module_(module) {}

  Status Run() {
    // Index functions by (expanded name, arity).
    for (size_t i = 0; i < module_->functions.size(); ++i) {
      UserFunction& fn = module_->functions[i];
      std::string key = FnKey(fn.name, fn.params.size());
      if (!fn_index_.emplace(key, static_cast<int>(i)).second) {
        return Status::StaticError("duplicate function declaration: " +
                                   fn.name.Lexical() + "#" +
                                   std::to_string(fn.params.size()));
      }
    }
    // Globals, in declaration order; each init sees earlier globals only.
    for (size_t i = 0; i < module_->globals.size(); ++i) {
      GlobalVariable& g = module_->globals[i];
      for (size_t j = 0; j < i; ++j) {
        if (module_->globals[j].name == g.name) {
          return Status::StaticError("duplicate global variable: $" +
                                     g.name.Lexical());
        }
      }
      g.slot = static_cast<int>(i);
      if (g.init != nullptr) {
        next_slot_ = 0;
        scope_.clear();
        visible_globals_ = i;
        XQP_RETURN_NOT_OK(Resolve(g.init));
        g.num_slots = next_slot_;
      }
    }
    visible_globals_ = module_->globals.size();

    // Function bodies: own frame, params first.
    for (UserFunction& fn : module_->functions) {
      if (fn.body == nullptr) continue;
      next_slot_ = 0;
      scope_.clear();
      fn.param_slots.clear();
      for (const QName& p : fn.params) {
        int slot = next_slot_++;
        fn.param_slots.push_back(slot);
        scope_.push_back(ScopeEntry{p, slot});
      }
      current_function_ = &fn;
      XQP_RETURN_NOT_OK(Resolve(fn.body));
      current_function_ = nullptr;
      fn.num_slots = next_slot_;
    }

    // Main body.
    next_slot_ = 0;
    scope_.clear();
    XQP_RETURN_NOT_OK(Resolve(module_->body));
    module_->num_slots = next_slot_;

    // Recursion detection (for the inlining rewrite): mark every function
    // whose body can reach itself through the call graph.
    MarkRecursion();
    return Status::OK();
  }

 private:
  static std::string FnKey(const QName& name, size_t arity) {
    return name.uri + "|" + name.local + "#" + std::to_string(arity);
  }

  int PushVar(const QName& name) {
    int slot = next_slot_++;
    scope_.push_back(ScopeEntry{name, slot});
    return slot;
  }

  Status Resolve(ExprPtr& slot) {
    Expr* e = slot.get();
    switch (e->kind()) {
      case ExprKind::kVarRef: {
        auto* var = static_cast<VarRefExpr*>(e);
        for (auto it = scope_.rbegin(); it != scope_.rend(); ++it) {
          if (it->name == var->name) {
            var->slot = it->slot;
            var->is_global = false;
            return Status::OK();
          }
        }
        for (size_t i = 0; i < visible_globals_; ++i) {
          if (module_->globals[i].name == var->name) {
            var->slot = module_->globals[i].slot;
            var->is_global = true;
            return Status::OK();
          }
        }
        return Status::StaticError("undefined variable: $" +
                                   var->name.Lexical());
      }
      case ExprKind::kFlwor: {
        auto* flwor = static_cast<FlworExpr*>(e);
        size_t mark = scope_.size();
        for (size_t i = 0; i < flwor->clauses.size(); ++i) {
          XQP_RETURN_NOT_OK(Resolve(flwor->child_slot(i)));
          FlworExpr::Clause& c = flwor->clauses[i];
          if (c.type == FlworExpr::Clause::Type::kFor ||
              c.type == FlworExpr::Clause::Type::kLet) {
            c.var_slot = PushVar(c.var);
            if (c.has_pos_var()) c.pos_slot = PushVar(c.pos_var);
          }
        }
        XQP_RETURN_NOT_OK(Resolve(flwor->child_slot(flwor->NumChildren() - 1)));
        scope_.resize(mark);
        return Status::OK();
      }
      case ExprKind::kQuantified: {
        auto* q = static_cast<QuantifiedExpr*>(e);
        size_t mark = scope_.size();
        for (size_t i = 0; i < q->bindings.size(); ++i) {
          XQP_RETURN_NOT_OK(Resolve(q->child_slot(i)));
          q->bindings[i].var_slot = PushVar(q->bindings[i].var);
        }
        XQP_RETURN_NOT_OK(Resolve(q->child_slot(q->NumChildren() - 1)));
        scope_.resize(mark);
        return Status::OK();
      }
      case ExprKind::kTypeswitch: {
        auto* ts = static_cast<TypeswitchExpr*>(e);
        XQP_RETURN_NOT_OK(Resolve(ts->child_slot(0)));
        for (size_t i = 0; i < ts->cases.size(); ++i) {
          size_t mark = scope_.size();
          if (ts->cases[i].has_var()) {
            ts->cases[i].var_slot = PushVar(ts->cases[i].var);
          }
          XQP_RETURN_NOT_OK(Resolve(ts->child_slot(i + 1)));
          scope_.resize(mark);
        }
        size_t mark = scope_.size();
        if (ts->default_has_var()) {
          ts->default_var_slot = PushVar(ts->default_var);
        }
        XQP_RETURN_NOT_OK(Resolve(ts->child_slot(ts->NumChildren() - 1)));
        scope_.resize(mark);
        return Status::OK();
      }
      case ExprKind::kFunctionCall:
        return ResolveCall(slot);
      default: {
        for (size_t i = 0; i < e->NumChildren(); ++i) {
          XQP_RETURN_NOT_OK(Resolve(e->child_slot(i)));
        }
        return Status::OK();
      }
    }
  }

  Status ResolveCall(ExprPtr& slot) {
    auto* call = static_cast<FunctionCallExpr*>(slot.get());
    for (size_t i = 0; i < call->NumChildren(); ++i) {
      XQP_RETURN_NOT_OK(Resolve(call->child_slot(i)));
    }
    // xs:T(arg) constructor calls become casts.
    if (call->name.uri == kXsNamespace || call->name.uri == kXdtNamespace) {
      if (call->NumChildren() != 1) {
        return Status::StaticError("constructor function " +
                                   call->name.Lexical() +
                                   " expects exactly one argument");
      }
      auto type = XsTypeFromName(call->name.local);
      if (!type.ok()) return type.status();
      slot = std::make_unique<CastExpr>(call->TakeChild(0), type.value(),
                                        /*optional=*/true);
      return Status::OK();
    }
    // User functions take precedence over builtins outside the fn namespace.
    auto it = fn_index_.find(FnKey(call->name, call->NumChildren()));
    if (it != fn_index_.end()) {
      call->user_index = it->second;
      if (current_function_ != nullptr) {
        callers_[it->second].push_back(CurrentFunctionIndex());
      } else {
        callers_[it->second].push_back(-1);
      }
      return Status::OK();
    }
    const BuiltinDesc* desc =
        LookupBuiltin(call->name.uri, call->name.local, call->NumChildren());
    if (desc != nullptr) {
      call->builtin = static_cast<int>(desc->id);
      return Status::OK();
    }
    const BuiltinDesc* by_name =
        LookupBuiltinByName(call->name.uri, call->name.local);
    if (by_name != nullptr) {
      return Status::StaticError(
          "wrong number of arguments for fn:" + std::string(by_name->local) +
          " (got " + std::to_string(call->NumChildren()) + ")");
    }
    return Status::StaticError("unknown function: " + call->name.Lexical() +
                               "#" + std::to_string(call->NumChildren()));
  }

  int CurrentFunctionIndex() const {
    return static_cast<int>(current_function_ - module_->functions.data());
  }

  void MarkRecursion() {
    // callers_[callee] lists caller function indices (-1 = main). A function
    // is recursive if it can reach itself; simple DFS per function.
    size_t n = module_->functions.size();
    for (size_t f = 0; f < n; ++f) {
      std::vector<bool> seen(n, false);
      std::vector<int> stack;
      // Start from functions called by f's body: invert view — walk callees
      // reachable from f via the call edges recorded per callee.
      // Build adjacency: caller -> callee.
      // (Rebuilt per function; function counts are tiny.)
      std::vector<std::vector<int>> adj(n);
      for (const auto& [callee, callers] : callers_) {
        for (int caller : callers) {
          if (caller >= 0) adj[caller].push_back(callee);
        }
      }
      stack.push_back(static_cast<int>(f));
      bool first = true;
      while (!stack.empty()) {
        int cur = stack.back();
        stack.pop_back();
        if (!first) {
          if (cur == static_cast<int>(f)) {
            module_->functions[f].recursive = true;
            break;
          }
          if (seen[cur]) continue;
          seen[cur] = true;
        }
        first = false;
        for (int next : adj[cur]) {
          if (next == static_cast<int>(f)) {
            module_->functions[f].recursive = true;
          }
          if (!seen[next]) stack.push_back(next);
        }
        if (module_->functions[f].recursive) break;
      }
    }
  }

  ParsedModule* module_;
  std::unordered_map<std::string, int> fn_index_;
  std::unordered_map<int, std::vector<int>> callers_;
  std::vector<ScopeEntry> scope_;
  int next_slot_ = 0;
  size_t visible_globals_ = 0;
  UserFunction* current_function_ = nullptr;
};

}  // namespace

Status NormalizeModule(ParsedModule* module) {
  Normalizer normalizer(module);
  return normalizer.Run();
}

}  // namespace xqp
