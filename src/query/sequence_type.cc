#include "query/sequence_type.h"

namespace xqp {

std::string ItemTypeTest::ToString() const {
  switch (kind) {
    case Kind::kItem:
      return "item()";
    case Kind::kNode:
      return "node()";
    case Kind::kElement:
      return wildcard_name ? "element()" : "element(" + name.Lexical() + ")";
    case Kind::kAttribute:
      return wildcard_name ? "attribute()"
                           : "attribute(" + name.Lexical() + ")";
    case Kind::kText:
      return "text()";
    case Kind::kComment:
      return "comment()";
    case Kind::kPi:
      return "processing-instruction()";
    case Kind::kDocument:
      return "document-node()";
    case Kind::kAtomic:
      return std::string(XsTypeName(atomic));
  }
  return "item()";
}

std::string SequenceType::ToString() const {
  if (empty_sequence) return "empty-sequence()";
  std::string s = item.ToString();
  switch (occurrence) {
    case Occurrence::kOne:
      break;
    case Occurrence::kOptional:
      s += "?";
      break;
    case Occurrence::kStar:
      s += "*";
      break;
    case Occurrence::kPlus:
      s += "+";
      break;
  }
  return s;
}

}  // namespace xqp
