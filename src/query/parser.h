#ifndef XQP_QUERY_PARSER_H_
#define XQP_QUERY_PARSER_H_

#include <cstdint>
#include <memory>
#include <string_view>

#include "base/status.h"
#include "query/static_context.h"

namespace xqp {

/// Parses an XQuery main module (prolog + expression) into a ParsedModule.
/// The supported language is the XQuery 1.0 subset described in README.md:
/// FLWOR (with order by), quantifiers, typeswitch, full path expressions
/// with twelve axes, direct and computed constructors, user functions and
/// global variables, and the operator suite of the paper's expression
/// hierarchy.
Result<std::unique_ptr<ParsedModule>> ParseQuery(std::string_view query);

/// As above with an explicit cap on expression nesting (0 means
/// QueryLimits::kDefaultMaxExprDepth); exceeding it is a kStaticError.
/// The cap bounds the recursive-descent parser's C++ stack usage.
Result<std::unique_ptr<ParsedModule>> ParseQuery(std::string_view query,
                                                 uint32_t max_expr_depth);

}  // namespace xqp

#endif  // XQP_QUERY_PARSER_H_
