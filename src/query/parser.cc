#include "query/parser.h"

#include <vector>

#include "base/limits.h"
#include "base/string_util.h"
#include "query/lexer.h"

namespace xqp {

namespace {

/// Kind-test keywords that introduce a node test rather than a function
/// call when followed by "(".
bool IsKindTestName(std::string_view name) {
  return name == "node" || name == "text" || name == "comment" ||
         name == "processing-instruction" || name == "element" ||
         name == "attribute" || name == "document-node" || name == "item" ||
         name == "empty-sequence";
}

class Parser {
 public:
  Parser(std::string_view query, uint32_t max_expr_depth)
      : lex_(query),
        max_depth_(max_expr_depth == 0 ? QueryLimits::kDefaultMaxExprDepth
                                       : max_expr_depth) {}

  Result<std::unique_ptr<ParsedModule>> ParseModule();

 private:
  // --- Token helpers ---

  Result<bool> PeekSym(Sym s, size_t ahead = 0) {
    XQP_ASSIGN_OR_RETURN(const Tok* t, lex_.Peek(ahead));
    return t->IsSym(s);
  }
  Result<bool> PeekName(std::string_view name, size_t ahead = 0) {
    XQP_ASSIGN_OR_RETURN(const Tok* t, lex_.Peek(ahead));
    return t->IsName(name);
  }
  Result<bool> AcceptSym(Sym s) {
    XQP_ASSIGN_OR_RETURN(bool ok, PeekSym(s));
    if (ok) XQP_RETURN_NOT_OK(lex_.Take().status());
    return ok;
  }
  Result<bool> AcceptName(std::string_view name) {
    XQP_ASSIGN_OR_RETURN(bool ok, PeekName(name));
    if (ok) XQP_RETURN_NOT_OK(lex_.Take().status());
    return ok;
  }
  Status ExpectSym(Sym s, const char* what) {
    XQP_ASSIGN_OR_RETURN(bool ok, AcceptSym(s));
    if (!ok) return lex_.Error(std::string("expected ") + what);
    return Status::OK();
  }
  Status ExpectName(std::string_view name) {
    XQP_ASSIGN_OR_RETURN(bool ok, AcceptName(name));
    if (!ok) {
      return lex_.Error("expected keyword '" + std::string(name) + "'");
    }
    return Status::OK();
  }

  /// Reads a lexical QName: NCName (":" NCName)?, colon must be adjacent.
  /// Returns the unresolved (prefix, local) pair.
  Result<std::pair<std::string, std::string>> ReadLexicalQName() {
    XQP_ASSIGN_OR_RETURN(const Tok* t, lex_.Peek());
    if (t->type != TokType::kNCName) return lex_.Error("expected a name");
    XQP_ASSIGN_OR_RETURN(Tok first, lex_.Take());
    XQP_ASSIGN_OR_RETURN(const Tok* colon, lex_.Peek());
    if (colon->IsSym(Sym::kColon) && colon->pos == first.end) {
      XQP_ASSIGN_OR_RETURN(const Tok* local, lex_.Peek(1));
      if (local->type == TokType::kNCName && local->pos == colon->end) {
        XQP_RETURN_NOT_OK(lex_.Take().status());  // colon
        XQP_ASSIGN_OR_RETURN(Tok local_tok, lex_.Take());
        return std::make_pair(first.text, local_tok.text);
      }
    }
    return std::make_pair(std::string(), first.text);
  }

  /// Reads and resolves a QName against the static context (plus any
  /// constructor-scoped namespaces).
  Result<QName> ReadQName(bool use_default_element_ns) {
    XQP_ASSIGN_OR_RETURN(auto parts, ReadLexicalQName());
    XQP_ASSIGN_OR_RETURN(
        std::string uri,
        ResolvePrefix(parts.first, use_default_element_ns && parts.first.empty()));
    return QName(std::move(uri), std::move(parts.first),
                 std::move(parts.second));
  }

  /// Prefix resolution that consults constructor-scoped xmlns declarations
  /// first, then the static context.
  Result<std::string> ResolvePrefix(std::string_view prefix,
                                    bool use_default_element_ns) {
    for (auto it = ctor_ns_.rbegin(); it != ctor_ns_.rend(); ++it) {
      for (auto jt = it->rbegin(); jt != it->rend(); ++jt) {
        if (jt->first == prefix) return jt->second;
      }
    }
    if (prefix.empty() && !use_default_element_ns) {
      // Inside constructors, an in-scope default namespace applies even
      // though the static-context default may be empty.
      return std::string();
    }
    return module_->sctx.ResolvePrefix(prefix, use_default_element_ns);
  }

  // --- Prolog ---

  Status ParseProlog();
  Status ParseFunctionDecl();
  Status ParseVariableDecl();

  // --- Types ---

  Result<SequenceType> ParseSequenceType();
  Result<ItemTypeTest> ParseItemType();
  Result<std::pair<XsType, bool>> ParseSingleType();

  // --- Expressions, by precedence ---

  Result<ExprPtr> ParseExpr();  // Comma.
  Result<ExprPtr> ParseExprSingle();
  Result<ExprPtr> ParseExprSingleGuarded();
  Result<ExprPtr> ParseFlwor();
  Result<ExprPtr> ParseQuantified();
  Result<ExprPtr> ParseTypeswitch();
  Result<ExprPtr> ParseIf();
  Result<ExprPtr> ParseOr();
  Result<ExprPtr> ParseAnd();
  Result<ExprPtr> ParseComparison();
  Result<ExprPtr> ParseRange();
  Result<ExprPtr> ParseAdditive();
  Result<ExprPtr> ParseMultiplicative();
  Result<ExprPtr> ParseUnion();
  Result<ExprPtr> ParseIntersectExcept();
  Result<ExprPtr> ParseInstanceOf();
  Result<ExprPtr> ParseTreat();
  Result<ExprPtr> ParseCastable();
  Result<ExprPtr> ParseCast();
  Result<ExprPtr> ParseUnary();
  Result<ExprPtr> ParsePath();
  Result<ExprPtr> ParseRelativePath(ExprPtr first);
  Result<ExprPtr> ParseStep();
  Result<ExprPtr> ParsePredicates(ExprPtr base);
  Result<ExprPtr> ParsePrimary();
  Result<ExprPtr> ParseFunctionCall();
  Result<ExprPtr> ParseComputedConstructor();
  Result<ExprPtr> ParseDirectConstructor();
  Result<ExprPtr> ParseEnclosedExpr();
  Result<NodeTest> ParseNodeTest(Axis axis);
  Result<NodeTest> ParseKindTest(const std::string& keyword);

  /// True when the upcoming tokens begin a computed constructor
  /// ("element {", "element name {", ...).
  Result<bool> LooksLikeComputedCtor();

  Lexer lex_;
  /// ParseExprSingle recursion bookkeeping (see the guard there).
  uint32_t max_depth_;
  uint32_t depth_ = 0;
  std::unique_ptr<ParsedModule> module_;
  /// Namespace scopes opened by direct element constructors during parsing.
  std::vector<std::vector<std::pair<std::string, std::string>>> ctor_ns_;
};

// ---------------------------------------------------------------------------
// Prolog
// ---------------------------------------------------------------------------

Status Parser::ParseProlog() {
  while (true) {
    XQP_ASSIGN_OR_RETURN(bool is_declare, PeekName("declare"));
    XQP_ASSIGN_OR_RETURN(bool is_define, PeekName("define"));
    XQP_ASSIGN_OR_RETURN(bool is_import, PeekName("import"));
    if (!is_declare && !is_define && !is_import) return Status::OK();
    if (is_import) {
      return lex_.Error(
          "module/schema import is not supported (optional XQuery feature)");
    }
    XQP_RETURN_NOT_OK(lex_.Take().status());  // declare / define

    XQP_ASSIGN_OR_RETURN(const Tok* t, lex_.Peek());
    if (t->IsName("namespace")) {
      XQP_RETURN_NOT_OK(lex_.Take().status());
      XQP_ASSIGN_OR_RETURN(Tok prefix, lex_.Take());
      if (prefix.type != TokType::kNCName) {
        return lex_.Error("expected namespace prefix");
      }
      XQP_RETURN_NOT_OK(ExpectSym(Sym::kEq, "'='"));
      XQP_ASSIGN_OR_RETURN(Tok uri, lex_.Take());
      if (uri.type != TokType::kString) {
        return lex_.Error("expected namespace URI string");
      }
      XQP_RETURN_NOT_OK(module_->sctx.DeclareNamespace(prefix.text, uri.text));
    } else if (t->IsName("default")) {
      XQP_RETURN_NOT_OK(lex_.Take().status());
      XQP_ASSIGN_OR_RETURN(bool elem, AcceptName("element"));
      XQP_ASSIGN_OR_RETURN(bool fun, AcceptName("function"));
      if (!elem && !fun) {
        return lex_.Error("expected 'element' or 'function'");
      }
      XQP_RETURN_NOT_OK(ExpectName("namespace"));
      XQP_ASSIGN_OR_RETURN(Tok uri, lex_.Take());
      if (uri.type != TokType::kString) {
        return lex_.Error("expected namespace URI string");
      }
      if (elem) {
        module_->sctx.set_default_element_ns(uri.text);
      } else {
        module_->sctx.set_default_function_ns(uri.text);
      }
    } else if (t->IsName("boundary-space")) {
      XQP_RETURN_NOT_OK(lex_.Take().status());
      XQP_ASSIGN_OR_RETURN(bool preserve, AcceptName("preserve"));
      if (!preserve) XQP_RETURN_NOT_OK(ExpectName("strip"));
      module_->sctx.set_boundary_space_preserve(preserve);
    } else if (t->IsName("variable")) {
      XQP_RETURN_NOT_OK(lex_.Take().status());
      XQP_RETURN_NOT_OK(ParseVariableDecl());
    } else if (t->IsName("function")) {
      XQP_RETURN_NOT_OK(lex_.Take().status());
      XQP_RETURN_NOT_OK(ParseFunctionDecl());
    } else {
      return lex_.Error("unsupported prolog declaration: " + t->text);
    }
    XQP_RETURN_NOT_OK(ExpectSym(Sym::kSemicolon, "';' after declaration"));
  }
}

Status Parser::ParseVariableDecl() {
  XQP_RETURN_NOT_OK(ExpectSym(Sym::kDollar, "'$'"));
  GlobalVariable var;
  XQP_ASSIGN_OR_RETURN(var.name, ReadQName(false));
  XQP_ASSIGN_OR_RETURN(bool as, AcceptName("as"));
  if (as) {
    XQP_ASSIGN_OR_RETURN(var.type, ParseSequenceType());
    var.has_type = true;
  }
  XQP_ASSIGN_OR_RETURN(bool external, AcceptName("external"));
  if (!external) {
    // Either ":= Expr" or "{ Expr }" (older draft syntax used in the paper).
    XQP_ASSIGN_OR_RETURN(bool assign, AcceptSym(Sym::kAssign));
    if (assign) {
      XQP_ASSIGN_OR_RETURN(var.init, ParseExprSingle());
    } else {
      XQP_ASSIGN_OR_RETURN(var.init, ParseEnclosedExpr());
    }
  }
  module_->globals.push_back(std::move(var));
  return Status::OK();
}

Status Parser::ParseFunctionDecl() {
  UserFunction fn;
  XQP_ASSIGN_OR_RETURN(auto parts, ReadLexicalQName());
  // Unprefixed function names fall into the default function namespace —
  // but user declarations may not live in the fn: namespace; route them to
  // local:.
  std::string uri;
  if (parts.first.empty()) {
    uri = std::string(kLocalNamespace);
  } else {
    XQP_ASSIGN_OR_RETURN(uri, ResolvePrefix(parts.first, false));
  }
  fn.name = QName(std::move(uri), parts.first, parts.second);

  XQP_RETURN_NOT_OK(ExpectSym(Sym::kLParen, "'('"));
  XQP_ASSIGN_OR_RETURN(bool empty, AcceptSym(Sym::kRParen));
  if (!empty) {
    while (true) {
      XQP_RETURN_NOT_OK(ExpectSym(Sym::kDollar, "'$'"));
      XQP_ASSIGN_OR_RETURN(QName pname, ReadQName(false));
      fn.params.push_back(std::move(pname));
      XQP_ASSIGN_OR_RETURN(bool as, AcceptName("as"));
      if (as) {
        XQP_ASSIGN_OR_RETURN(SequenceType t, ParseSequenceType());
        fn.param_types.push_back(std::move(t));
      } else {
        fn.param_types.push_back(SequenceType::AnyItems());
      }
      XQP_ASSIGN_OR_RETURN(bool comma, AcceptSym(Sym::kComma));
      if (!comma) break;
    }
    XQP_RETURN_NOT_OK(ExpectSym(Sym::kRParen, "')'"));
  }
  XQP_ASSIGN_OR_RETURN(bool as, AcceptName("as"));
  if (as) {
    XQP_ASSIGN_OR_RETURN(fn.return_type, ParseSequenceType());
  }
  XQP_ASSIGN_OR_RETURN(bool external, AcceptName("external"));
  if (!external) {
    XQP_ASSIGN_OR_RETURN(fn.body, ParseEnclosedExpr());
  }
  module_->functions.push_back(std::move(fn));
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Sequence types
// ---------------------------------------------------------------------------

Result<ItemTypeTest> Parser::ParseItemType() {
  XQP_ASSIGN_OR_RETURN(const Tok* t, lex_.Peek());
  if (t->type != TokType::kNCName) {
    return lex_.Error("expected an item type");
  }
  XQP_ASSIGN_OR_RETURN(const Tok* paren, lex_.Peek(1));
  ItemTypeTest test;
  if (paren->IsSym(Sym::kLParen) && IsKindTestName(t->text)) {
    std::string kw = t->text;
    XQP_RETURN_NOT_OK(lex_.Take().status());
    XQP_RETURN_NOT_OK(lex_.Take().status());  // '('
    if (kw == "item") {
      test.kind = ItemTypeTest::Kind::kItem;
      XQP_RETURN_NOT_OK(ExpectSym(Sym::kRParen, "')'"));
      return test;
    }
    if (kw == "node") {
      test.kind = ItemTypeTest::Kind::kNode;
    } else if (kw == "text") {
      test.kind = ItemTypeTest::Kind::kText;
    } else if (kw == "comment") {
      test.kind = ItemTypeTest::Kind::kComment;
    } else if (kw == "processing-instruction") {
      test.kind = ItemTypeTest::Kind::kPi;
    } else if (kw == "document-node") {
      test.kind = ItemTypeTest::Kind::kDocument;
    } else if (kw == "element" || kw == "attribute") {
      test.kind = kw == "element" ? ItemTypeTest::Kind::kElement
                                  : ItemTypeTest::Kind::kAttribute;
      XQP_ASSIGN_OR_RETURN(bool star, AcceptSym(Sym::kStar));
      if (!star) {
        XQP_ASSIGN_OR_RETURN(bool close, PeekSym(Sym::kRParen));
        if (!close) {
          XQP_ASSIGN_OR_RETURN(test.name,
                               ReadQName(kw == "element"));
          test.wildcard_name = false;
          // Optional ", TypeName" — accepted and ignored (untyped model).
          XQP_ASSIGN_OR_RETURN(bool comma, AcceptSym(Sym::kComma));
          if (comma) {
            XQP_RETURN_NOT_OK(ReadQName(false).status());
          }
        }
      }
    } else {
      return lex_.Error("unsupported kind test: " + kw);
    }
    XQP_RETURN_NOT_OK(ExpectSym(Sym::kRParen, "')'"));
    return test;
  }
  // Atomic type name.
  XQP_ASSIGN_OR_RETURN(auto parts, ReadLexicalQName());
  std::string lexical =
      parts.first.empty() ? parts.second : parts.first + ":" + parts.second;
  XQP_ASSIGN_OR_RETURN(XsType at, XsTypeFromName(lexical));
  test.kind = ItemTypeTest::Kind::kAtomic;
  test.atomic = at;
  return test;
}

Result<SequenceType> Parser::ParseSequenceType() {
  XQP_ASSIGN_OR_RETURN(const Tok* t, lex_.Peek());
  XQP_ASSIGN_OR_RETURN(const Tok* paren, lex_.Peek(1));
  SequenceType st;
  if (t->IsName("empty-sequence") && paren->IsSym(Sym::kLParen)) {
    XQP_RETURN_NOT_OK(lex_.Take().status());
    XQP_RETURN_NOT_OK(lex_.Take().status());
    XQP_RETURN_NOT_OK(ExpectSym(Sym::kRParen, "')'"));
    st.empty_sequence = true;
    return st;
  }
  // Older "empty()" spelling from the paper era.
  if (t->IsName("empty") && paren->IsSym(Sym::kLParen)) {
    XQP_RETURN_NOT_OK(lex_.Take().status());
    XQP_RETURN_NOT_OK(lex_.Take().status());
    XQP_RETURN_NOT_OK(ExpectSym(Sym::kRParen, "')'"));
    st.empty_sequence = true;
    return st;
  }
  XQP_ASSIGN_OR_RETURN(st.item, ParseItemType());
  XQP_ASSIGN_OR_RETURN(bool star, AcceptSym(Sym::kStar));
  if (star) {
    st.occurrence = Occurrence::kStar;
    return st;
  }
  XQP_ASSIGN_OR_RETURN(bool plus, AcceptSym(Sym::kPlus));
  if (plus) {
    st.occurrence = Occurrence::kPlus;
    return st;
  }
  XQP_ASSIGN_OR_RETURN(bool question, AcceptSym(Sym::kQuestion));
  if (question) {
    st.occurrence = Occurrence::kOptional;
    return st;
  }
  st.occurrence = Occurrence::kOne;
  return st;
}

Result<std::pair<XsType, bool>> Parser::ParseSingleType() {
  XQP_ASSIGN_OR_RETURN(auto parts, ReadLexicalQName());
  std::string lexical =
      parts.first.empty() ? parts.second : parts.first + ":" + parts.second;
  XQP_ASSIGN_OR_RETURN(XsType at, XsTypeFromName(lexical));
  XQP_ASSIGN_OR_RETURN(bool optional, AcceptSym(Sym::kQuestion));
  return std::make_pair(at, optional);
}

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

Result<ExprPtr> Parser::ParseExpr() {
  XQP_ASSIGN_OR_RETURN(ExprPtr first, ParseExprSingle());
  XQP_ASSIGN_OR_RETURN(bool comma, AcceptSym(Sym::kComma));
  if (!comma) return first;
  auto seq = std::make_unique<SequenceExpr>();
  seq->AddChild(std::move(first));
  while (true) {
    XQP_ASSIGN_OR_RETURN(ExprPtr next, ParseExprSingle());
    seq->AddChild(std::move(next));
    XQP_ASSIGN_OR_RETURN(bool more, AcceptSym(Sym::kComma));
    if (!more) break;
  }
  return ExprPtr(std::move(seq));
}

Result<ExprPtr> Parser::ParseExprSingle() {
  // Depth guard on the recursive-descent funnel: every nested expression
  // form passes through here, so bounding it bounds the parser's own C++
  // stack (a deeply parenthesized query would otherwise overflow it long
  // before any runtime limit could help).
  if (depth_ >= max_depth_) {
    return lex_.Error("expression nesting exceeds maximum depth of " +
                      std::to_string(max_depth_));
  }
  ++depth_;
  Result<ExprPtr> result = ParseExprSingleGuarded();
  --depth_;
  return result;
}

Result<ExprPtr> Parser::ParseExprSingleGuarded() {
  XQP_ASSIGN_OR_RETURN(const Tok* t, lex_.Peek());
  if (t->type == TokType::kNCName) {
    XQP_ASSIGN_OR_RETURN(const Tok* next, lex_.Peek(1));
    if ((t->IsName("for") || t->IsName("let")) && next->IsSym(Sym::kDollar)) {
      return ParseFlwor();
    }
    if ((t->IsName("some") || t->IsName("every")) &&
        next->IsSym(Sym::kDollar)) {
      return ParseQuantified();
    }
    if (t->IsName("typeswitch") && next->IsSym(Sym::kLParen)) {
      return ParseTypeswitch();
    }
    if (t->IsName("if") && next->IsSym(Sym::kLParen)) {
      return ParseIf();
    }
    if (t->IsName("try") && next->IsSym(Sym::kLBrace)) {
      // Extension syntax: try { Expr } catch [*] { Expr }.
      XQP_RETURN_NOT_OK(lex_.Take().status());
      XQP_ASSIGN_OR_RETURN(ExprPtr try_expr, ParseEnclosedExpr());
      XQP_RETURN_NOT_OK(ExpectName("catch"));
      XQP_ASSIGN_OR_RETURN(bool star, AcceptSym(Sym::kStar));
      (void)star;
      XQP_ASSIGN_OR_RETURN(ExprPtr catch_expr, ParseEnclosedExpr());
      return ExprPtr(std::make_unique<TryCatchExpr>(std::move(try_expr),
                                                    std::move(catch_expr)));
    }
  }
  return ParseOr();
}

Result<ExprPtr> Parser::ParseFlwor() {
  auto flwor = std::make_unique<FlworExpr>();
  // for/let clauses.
  while (true) {
    XQP_ASSIGN_OR_RETURN(const Tok* t, lex_.Peek());
    XQP_ASSIGN_OR_RETURN(const Tok* next, lex_.Peek(1));
    bool is_for = t->IsName("for") && next->IsSym(Sym::kDollar);
    bool is_let = t->IsName("let") && next->IsSym(Sym::kDollar);
    if (!is_for && !is_let) break;
    XQP_RETURN_NOT_OK(lex_.Take().status());
    while (true) {
      XQP_RETURN_NOT_OK(ExpectSym(Sym::kDollar, "'$'"));
      FlworExpr::Clause clause;
      clause.type = is_for ? FlworExpr::Clause::Type::kFor
                           : FlworExpr::Clause::Type::kLet;
      XQP_ASSIGN_OR_RETURN(clause.var, ReadQName(false));
      // Optional type declaration (accepted, dynamic checking only).
      XQP_ASSIGN_OR_RETURN(bool as, AcceptName("as"));
      if (as) {
        XQP_RETURN_NOT_OK(ParseSequenceType().status());
      }
      if (is_for) {
        XQP_ASSIGN_OR_RETURN(bool at, AcceptName("at"));
        if (at) {
          XQP_RETURN_NOT_OK(ExpectSym(Sym::kDollar, "'$'"));
          XQP_ASSIGN_OR_RETURN(clause.pos_var, ReadQName(false));
        }
        XQP_RETURN_NOT_OK(ExpectName("in"));
      } else {
        XQP_RETURN_NOT_OK(ExpectSym(Sym::kAssign, "':='"));
      }
      XQP_ASSIGN_OR_RETURN(ExprPtr e, ParseExprSingle());
      flwor->clauses.push_back(std::move(clause));
      flwor->AddChild(std::move(e));
      XQP_ASSIGN_OR_RETURN(bool comma, AcceptSym(Sym::kComma));
      if (!comma) break;
    }
  }
  if (flwor->clauses.empty()) {
    return lex_.Error("FLWOR expression requires at least one for/let clause");
  }
  // where clause.
  XQP_ASSIGN_OR_RETURN(bool where, AcceptName("where"));
  if (where) {
    FlworExpr::Clause clause;
    clause.type = FlworExpr::Clause::Type::kWhere;
    XQP_ASSIGN_OR_RETURN(ExprPtr e, ParseExprSingle());
    flwor->clauses.push_back(std::move(clause));
    flwor->AddChild(std::move(e));
  }
  // order by.
  XQP_ASSIGN_OR_RETURN(bool stable, AcceptName("stable"));
  XQP_ASSIGN_OR_RETURN(bool order, AcceptName("order"));
  if (stable && !order) return lex_.Error("expected 'order' after 'stable'");
  if (order) {
    XQP_RETURN_NOT_OK(ExpectName("by"));
    while (true) {
      FlworExpr::Clause clause;
      clause.type = FlworExpr::Clause::Type::kOrderSpec;
      XQP_ASSIGN_OR_RETURN(ExprPtr e, ParseExprSingle());
      XQP_ASSIGN_OR_RETURN(bool desc, AcceptName("descending"));
      if (!desc) {
        XQP_RETURN_NOT_OK(AcceptName("ascending").status());
      }
      clause.descending = desc;
      XQP_ASSIGN_OR_RETURN(bool empty_kw, AcceptName("empty"));
      if (empty_kw) {
        XQP_ASSIGN_OR_RETURN(bool greatest, AcceptName("greatest"));
        if (!greatest) XQP_RETURN_NOT_OK(ExpectName("least"));
        clause.empty_least = !greatest;
      }
      flwor->clauses.push_back(std::move(clause));
      flwor->AddChild(std::move(e));
      XQP_ASSIGN_OR_RETURN(bool comma, AcceptSym(Sym::kComma));
      if (!comma) break;
    }
  }
  XQP_RETURN_NOT_OK(ExpectName("return"));
  XQP_ASSIGN_OR_RETURN(ExprPtr ret, ParseExprSingle());
  flwor->AddChild(std::move(ret));
  return ExprPtr(std::move(flwor));
}

Result<ExprPtr> Parser::ParseQuantified() {
  XQP_ASSIGN_OR_RETURN(Tok kw, lex_.Take());
  auto quant = std::make_unique<QuantifiedExpr>(kw.text == "every");
  while (true) {
    XQP_RETURN_NOT_OK(ExpectSym(Sym::kDollar, "'$'"));
    QuantifiedExpr::Binding binding;
    XQP_ASSIGN_OR_RETURN(binding.var, ReadQName(false));
    XQP_ASSIGN_OR_RETURN(bool as, AcceptName("as"));
    if (as) {
      XQP_RETURN_NOT_OK(ParseSequenceType().status());
    }
    XQP_RETURN_NOT_OK(ExpectName("in"));
    XQP_ASSIGN_OR_RETURN(ExprPtr e, ParseExprSingle());
    quant->bindings.push_back(std::move(binding));
    quant->AddChild(std::move(e));
    XQP_ASSIGN_OR_RETURN(bool comma, AcceptSym(Sym::kComma));
    if (!comma) break;
  }
  XQP_RETURN_NOT_OK(ExpectName("satisfies"));
  XQP_ASSIGN_OR_RETURN(ExprPtr sat, ParseExprSingle());
  quant->AddChild(std::move(sat));
  return ExprPtr(std::move(quant));
}

Result<ExprPtr> Parser::ParseTypeswitch() {
  XQP_RETURN_NOT_OK(lex_.Take().status());  // typeswitch
  XQP_RETURN_NOT_OK(ExpectSym(Sym::kLParen, "'('"));
  auto ts = std::make_unique<TypeswitchExpr>();
  XQP_ASSIGN_OR_RETURN(ExprPtr operand, ParseExpr());
  ts->AddChild(std::move(operand));
  XQP_RETURN_NOT_OK(ExpectSym(Sym::kRParen, "')'"));
  while (true) {
    XQP_ASSIGN_OR_RETURN(bool is_case, AcceptName("case"));
    if (!is_case) break;
    TypeswitchExpr::Case c;
    XQP_ASSIGN_OR_RETURN(bool dollar, AcceptSym(Sym::kDollar));
    if (dollar) {
      XQP_ASSIGN_OR_RETURN(c.var, ReadQName(false));
      XQP_RETURN_NOT_OK(ExpectName("as"));
    }
    XQP_ASSIGN_OR_RETURN(c.type, ParseSequenceType());
    XQP_RETURN_NOT_OK(ExpectName("return"));
    XQP_ASSIGN_OR_RETURN(ExprPtr e, ParseExprSingle());
    ts->cases.push_back(std::move(c));
    ts->AddChild(std::move(e));
  }
  if (ts->cases.empty()) {
    return lex_.Error("typeswitch requires at least one case");
  }
  XQP_RETURN_NOT_OK(ExpectName("default"));
  XQP_ASSIGN_OR_RETURN(bool dollar, AcceptSym(Sym::kDollar));
  if (dollar) {
    XQP_ASSIGN_OR_RETURN(ts->default_var, ReadQName(false));
  }
  XQP_RETURN_NOT_OK(ExpectName("return"));
  XQP_ASSIGN_OR_RETURN(ExprPtr def, ParseExprSingle());
  ts->AddChild(std::move(def));
  return ExprPtr(std::move(ts));
}

Result<ExprPtr> Parser::ParseIf() {
  XQP_RETURN_NOT_OK(lex_.Take().status());  // if
  XQP_RETURN_NOT_OK(ExpectSym(Sym::kLParen, "'('"));
  XQP_ASSIGN_OR_RETURN(ExprPtr cond, ParseExpr());
  XQP_RETURN_NOT_OK(ExpectSym(Sym::kRParen, "')'"));
  XQP_RETURN_NOT_OK(ExpectName("then"));
  XQP_ASSIGN_OR_RETURN(ExprPtr then_e, ParseExprSingle());
  XQP_RETURN_NOT_OK(ExpectName("else"));
  XQP_ASSIGN_OR_RETURN(ExprPtr else_e, ParseExprSingle());
  return ExprPtr(std::make_unique<IfExpr>(std::move(cond), std::move(then_e),
                                          std::move(else_e)));
}

Result<ExprPtr> Parser::ParseOr() {
  XQP_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAnd());
  while (true) {
    XQP_ASSIGN_OR_RETURN(bool is_or, AcceptName("or"));
    if (!is_or) return lhs;
    XQP_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAnd());
    lhs = std::make_unique<LogicalExpr>(false, std::move(lhs), std::move(rhs));
  }
}

Result<ExprPtr> Parser::ParseAnd() {
  XQP_ASSIGN_OR_RETURN(ExprPtr lhs, ParseComparison());
  while (true) {
    XQP_ASSIGN_OR_RETURN(bool is_and, AcceptName("and"));
    if (!is_and) return lhs;
    XQP_ASSIGN_OR_RETURN(ExprPtr rhs, ParseComparison());
    lhs = std::make_unique<LogicalExpr>(true, std::move(lhs), std::move(rhs));
  }
}

Result<ExprPtr> Parser::ParseComparison() {
  XQP_ASSIGN_OR_RETURN(ExprPtr lhs, ParseRange());
  XQP_ASSIGN_OR_RETURN(const Tok* t, lex_.Peek());
  CompOp op;
  bool found = true;
  if (t->IsSym(Sym::kEq)) op = CompOp::kGenEq;
  else if (t->IsSym(Sym::kNe)) op = CompOp::kGenNe;
  else if (t->IsSym(Sym::kLt)) op = CompOp::kGenLt;
  else if (t->IsSym(Sym::kLe)) op = CompOp::kGenLe;
  else if (t->IsSym(Sym::kGt)) op = CompOp::kGenGt;
  else if (t->IsSym(Sym::kGe)) op = CompOp::kGenGe;
  else if (t->IsSym(Sym::kLtLt)) op = CompOp::kBefore;
  else if (t->IsSym(Sym::kGtGt)) op = CompOp::kAfter;
  else if (t->IsName("eq")) op = CompOp::kValueEq;
  else if (t->IsName("ne")) op = CompOp::kValueNe;
  else if (t->IsName("lt")) op = CompOp::kValueLt;
  else if (t->IsName("le")) op = CompOp::kValueLe;
  else if (t->IsName("gt")) op = CompOp::kValueGt;
  else if (t->IsName("ge")) op = CompOp::kValueGe;
  else if (t->IsName("is")) op = CompOp::kIs;
  else if (t->IsName("isnot")) op = CompOp::kIsNot;
  else found = false;
  if (!found) return lhs;
  XQP_RETURN_NOT_OK(lex_.Take().status());
  XQP_ASSIGN_OR_RETURN(ExprPtr rhs, ParseRange());
  return ExprPtr(
      std::make_unique<ComparisonExpr>(op, std::move(lhs), std::move(rhs)));
}

Result<ExprPtr> Parser::ParseRange() {
  XQP_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAdditive());
  XQP_ASSIGN_OR_RETURN(bool to, AcceptName("to"));
  if (!to) return lhs;
  XQP_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAdditive());
  return ExprPtr(std::make_unique<RangeExpr>(std::move(lhs), std::move(rhs)));
}

Result<ExprPtr> Parser::ParseAdditive() {
  XQP_ASSIGN_OR_RETURN(ExprPtr lhs, ParseMultiplicative());
  while (true) {
    XQP_ASSIGN_OR_RETURN(bool plus, AcceptSym(Sym::kPlus));
    bool minus = false;
    if (!plus) {
      XQP_ASSIGN_OR_RETURN(minus, AcceptSym(Sym::kMinus));
    }
    if (!plus && !minus) return lhs;
    XQP_ASSIGN_OR_RETURN(ExprPtr rhs, ParseMultiplicative());
    lhs = std::make_unique<ArithmeticExpr>(
        plus ? ArithOp::kAdd : ArithOp::kSub, std::move(lhs), std::move(rhs));
  }
}

Result<ExprPtr> Parser::ParseMultiplicative() {
  XQP_ASSIGN_OR_RETURN(ExprPtr lhs, ParseUnion());
  while (true) {
    XQP_ASSIGN_OR_RETURN(const Tok* t, lex_.Peek());
    ArithOp op;
    if (t->IsSym(Sym::kStar)) op = ArithOp::kMul;
    else if (t->IsName("div")) op = ArithOp::kDiv;
    else if (t->IsName("idiv")) op = ArithOp::kIDiv;
    else if (t->IsName("mod")) op = ArithOp::kMod;
    else return lhs;
    XQP_RETURN_NOT_OK(lex_.Take().status());
    XQP_ASSIGN_OR_RETURN(ExprPtr rhs, ParseUnion());
    lhs = std::make_unique<ArithmeticExpr>(op, std::move(lhs), std::move(rhs));
  }
}

Result<ExprPtr> Parser::ParseUnion() {
  XQP_ASSIGN_OR_RETURN(ExprPtr lhs, ParseIntersectExcept());
  while (true) {
    XQP_ASSIGN_OR_RETURN(bool pipe, AcceptSym(Sym::kPipe));
    bool kw = false;
    if (!pipe) {
      XQP_ASSIGN_OR_RETURN(kw, AcceptName("union"));
    }
    if (!pipe && !kw) return lhs;
    XQP_ASSIGN_OR_RETURN(ExprPtr rhs, ParseIntersectExcept());
    lhs = std::make_unique<UnionExpr>(std::move(lhs), std::move(rhs));
  }
}

Result<ExprPtr> Parser::ParseIntersectExcept() {
  XQP_ASSIGN_OR_RETURN(ExprPtr lhs, ParseInstanceOf());
  while (true) {
    XQP_ASSIGN_OR_RETURN(bool intersect, AcceptName("intersect"));
    bool except = false;
    if (!intersect) {
      XQP_ASSIGN_OR_RETURN(except, AcceptName("except"));
    }
    if (!intersect && !except) return lhs;
    XQP_ASSIGN_OR_RETURN(ExprPtr rhs, ParseInstanceOf());
    lhs = std::make_unique<IntersectExceptExpr>(except, std::move(lhs),
                                                std::move(rhs));
  }
}

Result<ExprPtr> Parser::ParseInstanceOf() {
  XQP_ASSIGN_OR_RETURN(ExprPtr e, ParseTreat());
  XQP_ASSIGN_OR_RETURN(bool inst, PeekName("instance"));
  if (!inst) return e;
  XQP_ASSIGN_OR_RETURN(bool of, PeekName("of", 1));
  if (!of) return e;
  XQP_RETURN_NOT_OK(lex_.Take().status());
  XQP_RETURN_NOT_OK(lex_.Take().status());
  XQP_ASSIGN_OR_RETURN(SequenceType type, ParseSequenceType());
  return ExprPtr(std::make_unique<InstanceOfExpr>(std::move(e), std::move(type)));
}

Result<ExprPtr> Parser::ParseTreat() {
  XQP_ASSIGN_OR_RETURN(ExprPtr e, ParseCastable());
  XQP_ASSIGN_OR_RETURN(bool treat, PeekName("treat"));
  if (!treat) return e;
  XQP_ASSIGN_OR_RETURN(bool as, PeekName("as", 1));
  if (!as) return e;
  XQP_RETURN_NOT_OK(lex_.Take().status());
  XQP_RETURN_NOT_OK(lex_.Take().status());
  XQP_ASSIGN_OR_RETURN(SequenceType type, ParseSequenceType());
  return ExprPtr(std::make_unique<TreatExpr>(std::move(e), std::move(type)));
}

Result<ExprPtr> Parser::ParseCastable() {
  XQP_ASSIGN_OR_RETURN(ExprPtr e, ParseCast());
  XQP_ASSIGN_OR_RETURN(bool castable, PeekName("castable"));
  if (!castable) return e;
  XQP_ASSIGN_OR_RETURN(bool as, PeekName("as", 1));
  if (!as) return e;
  XQP_RETURN_NOT_OK(lex_.Take().status());
  XQP_RETURN_NOT_OK(lex_.Take().status());
  XQP_ASSIGN_OR_RETURN(auto single, ParseSingleType());
  return ExprPtr(std::make_unique<CastableExpr>(std::move(e), single.first,
                                                single.second));
}

Result<ExprPtr> Parser::ParseCast() {
  XQP_ASSIGN_OR_RETURN(ExprPtr e, ParseUnary());
  XQP_ASSIGN_OR_RETURN(bool cast, PeekName("cast"));
  if (!cast) return e;
  XQP_ASSIGN_OR_RETURN(bool as, PeekName("as", 1));
  if (!as) return e;
  XQP_RETURN_NOT_OK(lex_.Take().status());
  XQP_RETURN_NOT_OK(lex_.Take().status());
  XQP_ASSIGN_OR_RETURN(auto single, ParseSingleType());
  return ExprPtr(
      std::make_unique<CastExpr>(std::move(e), single.first, single.second));
}

Result<ExprPtr> Parser::ParseUnary() {
  bool negate = false;
  bool any = false;
  while (true) {
    XQP_ASSIGN_OR_RETURN(bool minus, AcceptSym(Sym::kMinus));
    if (minus) {
      negate = !negate;
      any = true;
      continue;
    }
    XQP_ASSIGN_OR_RETURN(bool plus, AcceptSym(Sym::kPlus));
    if (plus) {
      any = true;
      continue;
    }
    break;
  }
  XQP_ASSIGN_OR_RETURN(ExprPtr e, ParsePath());
  if (!any) return e;
  return ExprPtr(std::make_unique<UnaryExpr>(negate, std::move(e)));
}

Result<ExprPtr> Parser::ParsePath() {
  XQP_ASSIGN_OR_RETURN(bool slashslash, AcceptSym(Sym::kSlashSlash));
  if (slashslash) {
    // "//E" == root()/descendant-or-self::node()/E.
    ExprPtr root = std::make_unique<RootExpr>();
    ExprPtr dos = std::make_unique<StepExpr>(Axis::kDescendantOrSelf,
                                             NodeTest{});
    ExprPtr base =
        std::make_unique<PathExpr>(std::move(root), std::move(dos));
    XQP_ASSIGN_OR_RETURN(ExprPtr step, ParseStep());
    ExprPtr path = std::make_unique<PathExpr>(std::move(base), std::move(step));
    return ParseRelativePath(std::move(path));
  }
  XQP_ASSIGN_OR_RETURN(bool slash, AcceptSym(Sym::kSlash));
  if (slash) {
    ExprPtr root = std::make_unique<RootExpr>();
    // Standalone "/" selects the root.
    XQP_ASSIGN_OR_RETURN(const Tok* t, lex_.Peek());
    bool has_step =
        t->type == TokType::kNCName || t->IsSym(Sym::kStar) ||
        t->IsSym(Sym::kAt) || t->IsSym(Sym::kDot) || t->IsSym(Sym::kDotDot) ||
        t->IsSym(Sym::kDollar) || t->IsSym(Sym::kLParen);
    if (!has_step) return root;
    XQP_ASSIGN_OR_RETURN(ExprPtr step, ParseStep());
    ExprPtr path = std::make_unique<PathExpr>(std::move(root), std::move(step));
    return ParseRelativePath(std::move(path));
  }
  XQP_ASSIGN_OR_RETURN(ExprPtr first, ParseStep());
  return ParseRelativePath(std::move(first));
}

Result<ExprPtr> Parser::ParseRelativePath(ExprPtr lhs) {
  while (true) {
    XQP_ASSIGN_OR_RETURN(bool slashslash, AcceptSym(Sym::kSlashSlash));
    if (slashslash) {
      ExprPtr dos =
          std::make_unique<StepExpr>(Axis::kDescendantOrSelf, NodeTest{});
      lhs = std::make_unique<PathExpr>(std::move(lhs), std::move(dos));
      XQP_ASSIGN_OR_RETURN(ExprPtr step, ParseStep());
      lhs = std::make_unique<PathExpr>(std::move(lhs), std::move(step));
      continue;
    }
    XQP_ASSIGN_OR_RETURN(bool slash, AcceptSym(Sym::kSlash));
    if (slash) {
      XQP_ASSIGN_OR_RETURN(ExprPtr step, ParseStep());
      lhs = std::make_unique<PathExpr>(std::move(lhs), std::move(step));
      continue;
    }
    return lhs;
  }
}

Result<NodeTest> Parser::ParseKindTest(const std::string& keyword) {
  // Caller consumed `keyword` and "(".
  NodeTest test;
  if (keyword == "node") {
    test.kind = NodeTest::Kind::kAnyKind;
  } else if (keyword == "text") {
    test.kind = NodeTest::Kind::kText;
  } else if (keyword == "comment") {
    test.kind = NodeTest::Kind::kComment;
  } else if (keyword == "document-node") {
    test.kind = NodeTest::Kind::kDocument;
  } else if (keyword == "processing-instruction") {
    test.kind = NodeTest::Kind::kPi;
    XQP_ASSIGN_OR_RETURN(const Tok* t, lex_.Peek());
    if (t->type == TokType::kString) {
      XQP_ASSIGN_OR_RETURN(Tok s, lex_.Take());
      test.pi_target = s.text;
    } else if (t->type == TokType::kNCName) {
      XQP_ASSIGN_OR_RETURN(Tok s, lex_.Take());
      test.pi_target = s.text;
    }
  } else if (keyword == "element" || keyword == "attribute") {
    test.kind = keyword == "element" ? NodeTest::Kind::kElement
                                     : NodeTest::Kind::kAttribute;
    test.wildcard_local = true;
    test.wildcard_uri = true;
    XQP_ASSIGN_OR_RETURN(bool star, AcceptSym(Sym::kStar));
    if (!star) {
      XQP_ASSIGN_OR_RETURN(bool close, PeekSym(Sym::kRParen));
      if (!close) {
        XQP_ASSIGN_OR_RETURN(QName name, ReadQName(keyword == "element"));
        test.wildcard_local = false;
        test.wildcard_uri = false;
        test.uri = name.uri;
        test.local = name.local;
        XQP_ASSIGN_OR_RETURN(bool comma, AcceptSym(Sym::kComma));
        if (comma) {
          XQP_RETURN_NOT_OK(ReadQName(false).status());  // Type ignored.
        }
      }
    }
  } else {
    return lex_.Error("unsupported kind test: " + keyword);
  }
  XQP_RETURN_NOT_OK(ExpectSym(Sym::kRParen, "')' in kind test"));
  return test;
}

Result<NodeTest> Parser::ParseNodeTest(Axis axis) {
  XQP_ASSIGN_OR_RETURN(const Tok* t, lex_.Peek());
  // "*" | "*:local"
  if (t->IsSym(Sym::kStar)) {
    XQP_ASSIGN_OR_RETURN(Tok star, lex_.Take());
    XQP_ASSIGN_OR_RETURN(const Tok* colon, lex_.Peek());
    if (colon->IsSym(Sym::kColon) && colon->pos == star.end) {
      XQP_ASSIGN_OR_RETURN(const Tok* local, lex_.Peek(1));
      if (local->type == TokType::kNCName && local->pos == colon->end) {
        XQP_RETURN_NOT_OK(lex_.Take().status());
        XQP_ASSIGN_OR_RETURN(Tok local_tok, lex_.Take());
        NodeTest test;
        test.kind = NodeTest::Kind::kName;
        test.wildcard_uri = true;
        test.local = local_tok.text;
        return test;
      }
    }
    return NodeTest::AnyName();
  }
  if (t->type != TokType::kNCName) {
    return lex_.Error("expected a node test");
  }
  // Kind tests.
  XQP_ASSIGN_OR_RETURN(const Tok* paren, lex_.Peek(1));
  if (paren->IsSym(Sym::kLParen) && IsKindTestName(t->text) &&
      t->text != "item" && t->text != "empty-sequence") {
    XQP_ASSIGN_OR_RETURN(Tok kw, lex_.Take());
    XQP_RETURN_NOT_OK(lex_.Take().status());  // '('
    return ParseKindTest(kw.text);
  }
  // Name test: QName | NCName":*".
  XQP_ASSIGN_OR_RETURN(Tok first, lex_.Take());
  XQP_ASSIGN_OR_RETURN(const Tok* colon, lex_.Peek());
  if (colon->IsSym(Sym::kColon) && colon->pos == first.end) {
    XQP_ASSIGN_OR_RETURN(const Tok* after, lex_.Peek(1));
    if (after->IsSym(Sym::kStar) && after->pos == colon->end) {
      XQP_RETURN_NOT_OK(lex_.Take().status());
      XQP_RETURN_NOT_OK(lex_.Take().status());
      XQP_ASSIGN_OR_RETURN(std::string uri, ResolvePrefix(first.text, false));
      NodeTest test;
      test.kind = NodeTest::Kind::kName;
      test.wildcard_local = true;
      test.uri = std::move(uri);
      return test;
    }
    if (after->type == TokType::kNCName && after->pos == colon->end) {
      XQP_RETURN_NOT_OK(lex_.Take().status());
      XQP_ASSIGN_OR_RETURN(Tok local, lex_.Take());
      XQP_ASSIGN_OR_RETURN(std::string uri, ResolvePrefix(first.text, false));
      return NodeTest::Name(std::move(uri), std::move(local.text));
    }
  }
  // Unprefixed name: default element namespace applies to element tests
  // (all axes except attribute).
  std::string uri;
  if (axis != Axis::kAttribute) {
    XQP_ASSIGN_OR_RETURN(uri, ResolvePrefix("", true));
  }
  return NodeTest::Name(std::move(uri), std::move(first.text));
}

Result<ExprPtr> Parser::ParseStep() {
  XQP_ASSIGN_OR_RETURN(const Tok* t, lex_.Peek());

  // Abbreviations.
  if (t->IsSym(Sym::kDotDot)) {
    XQP_RETURN_NOT_OK(lex_.Take().status());
    ExprPtr step = std::make_unique<StepExpr>(Axis::kParent, NodeTest{});
    return ParsePredicates(std::move(step));
  }
  if (t->IsSym(Sym::kAt)) {
    XQP_RETURN_NOT_OK(lex_.Take().status());
    XQP_ASSIGN_OR_RETURN(NodeTest test, ParseNodeTest(Axis::kAttribute));
    ExprPtr step = std::make_unique<StepExpr>(Axis::kAttribute, std::move(test));
    return ParsePredicates(std::move(step));
  }

  // axis::test
  if (t->type == TokType::kNCName) {
    XQP_ASSIGN_OR_RETURN(const Tok* cc, lex_.Peek(1));
    if (cc->IsSym(Sym::kColonColon)) {
      static const std::pair<std::string_view, Axis> kAxes[] = {
          {"child", Axis::kChild},
          {"descendant", Axis::kDescendant},
          {"descendant-or-self", Axis::kDescendantOrSelf},
          {"descendants", Axis::kDescendant},  // Paper-era spelling.
          {"self", Axis::kSelf},
          {"attribute", Axis::kAttribute},
          {"parent", Axis::kParent},
          {"ancestor", Axis::kAncestor},
          {"ancestors", Axis::kAncestor},
          {"ancestor-or-self", Axis::kAncestorOrSelf},
          {"following-sibling", Axis::kFollowingSibling},
          {"preceding-sibling", Axis::kPrecedingSibling},
          {"following", Axis::kFollowing},
          {"preceding", Axis::kPreceding},
      };
      for (const auto& [name, axis] : kAxes) {
        if (t->text == name) {
          XQP_RETURN_NOT_OK(lex_.Take().status());
          XQP_RETURN_NOT_OK(lex_.Take().status());
          XQP_ASSIGN_OR_RETURN(NodeTest test, ParseNodeTest(axis));
          ExprPtr step = std::make_unique<StepExpr>(axis, std::move(test));
          return ParsePredicates(std::move(step));
        }
      }
      return lex_.Error("unknown axis: " + t->text);
    }
    // Name test => child axis step, unless this is a function call, a kind
    // test, a computed constructor, or a direct constructor context.
    XQP_ASSIGN_OR_RETURN(bool computed, LooksLikeComputedCtor());
    if (!computed) {
      XQP_ASSIGN_OR_RETURN(const Tok* paren, lex_.Peek(1));
      bool call_like = paren->IsSym(Sym::kLParen);
      // Prefixed function name? NCName ":" NCName "(".
      bool prefixed_call = false;
      if (paren->IsSym(Sym::kColon) && paren->pos == t->end) {
        XQP_ASSIGN_OR_RETURN(const Tok* nn, lex_.Peek(2));
        if (nn->type == TokType::kNCName && nn->pos == paren->end) {
          XQP_ASSIGN_OR_RETURN(const Tok* pp, lex_.Peek(3));
          prefixed_call = pp->IsSym(Sym::kLParen);
        }
      }
      if (call_like || prefixed_call) {
        if (call_like && IsKindTestName(t->text)) {
          // Kind test as a step (child axis).
          XQP_ASSIGN_OR_RETURN(NodeTest test, ParseNodeTest(Axis::kChild));
          Axis axis = test.kind == NodeTest::Kind::kAttribute
                          ? Axis::kAttribute
                          : Axis::kChild;
          ExprPtr step = std::make_unique<StepExpr>(axis, std::move(test));
          return ParsePredicates(std::move(step));
        }
        XQP_ASSIGN_OR_RETURN(ExprPtr call, ParseFunctionCall());
        return ParsePredicates(std::move(call));
      }
      XQP_ASSIGN_OR_RETURN(NodeTest test, ParseNodeTest(Axis::kChild));
      ExprPtr step = std::make_unique<StepExpr>(Axis::kChild, std::move(test));
      return ParsePredicates(std::move(step));
    }
  }
  if (t->IsSym(Sym::kStar)) {
    XQP_ASSIGN_OR_RETURN(NodeTest test, ParseNodeTest(Axis::kChild));
    ExprPtr step = std::make_unique<StepExpr>(Axis::kChild, std::move(test));
    return ParsePredicates(std::move(step));
  }

  // Otherwise: primary expression (possibly filtered).
  XQP_ASSIGN_OR_RETURN(ExprPtr primary, ParsePrimary());
  return ParsePredicates(std::move(primary));
}

Result<ExprPtr> Parser::ParsePredicates(ExprPtr base) {
  XQP_ASSIGN_OR_RETURN(bool bracket, PeekSym(Sym::kLBracket));
  if (!bracket) return base;
  auto filter = std::make_unique<FilterExpr>(std::move(base));
  while (true) {
    XQP_ASSIGN_OR_RETURN(bool open, AcceptSym(Sym::kLBracket));
    if (!open) break;
    XQP_ASSIGN_OR_RETURN(ExprPtr pred, ParseExpr());
    XQP_RETURN_NOT_OK(ExpectSym(Sym::kRBracket, "']'"));
    filter->AddChild(std::move(pred));
  }
  return ExprPtr(std::move(filter));
}

Result<bool> Parser::LooksLikeComputedCtor() {
  XQP_ASSIGN_OR_RETURN(const Tok* t, lex_.Peek());
  if (t->type != TokType::kNCName) return false;
  bool named_kind = t->text == "element" || t->text == "attribute" ||
                    t->text == "processing-instruction";
  bool unnamed_kind = t->text == "text" || t->text == "comment" ||
                      t->text == "document";
  if (!named_kind && !unnamed_kind) return false;
  XQP_ASSIGN_OR_RETURN(const Tok* next, lex_.Peek(1));
  if (next->IsSym(Sym::kLBrace)) return true;  // computed name or content
  if (named_kind && next->type == TokType::kNCName) {
    // element name { ... } — possibly with a prefixed name.
    XQP_ASSIGN_OR_RETURN(const Tok* after, lex_.Peek(2));
    if (after->IsSym(Sym::kLBrace)) return true;
    if (after->IsSym(Sym::kColon) && after->pos == next->end) {
      XQP_ASSIGN_OR_RETURN(const Tok* local, lex_.Peek(3));
      if (local->type == TokType::kNCName && local->pos == after->end) {
        XQP_ASSIGN_OR_RETURN(const Tok* brace, lex_.Peek(4));
        if (brace->IsSym(Sym::kLBrace)) return true;
      }
    }
  }
  return false;
}

Result<ExprPtr> Parser::ParseEnclosedExpr() {
  XQP_RETURN_NOT_OK(ExpectSym(Sym::kLBrace, "'{'"));
  XQP_ASSIGN_OR_RETURN(bool empty, AcceptSym(Sym::kRBrace));
  if (empty) return ExprPtr(std::make_unique<SequenceExpr>());
  XQP_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
  XQP_RETURN_NOT_OK(ExpectSym(Sym::kRBrace, "'}'"));
  return e;
}

Result<ExprPtr> Parser::ParseComputedConstructor() {
  XQP_ASSIGN_OR_RETURN(Tok kw, lex_.Take());
  if (kw.text == "element" || kw.text == "attribute") {
    bool is_element = kw.text == "element";
    bool computed_name = false;
    QName name;
    ExprPtr name_expr;
    XQP_ASSIGN_OR_RETURN(bool brace, PeekSym(Sym::kLBrace));
    if (brace) {
      computed_name = true;
      XQP_ASSIGN_OR_RETURN(name_expr, ParseEnclosedExpr());
    } else {
      XQP_ASSIGN_OR_RETURN(name, ReadQName(is_element));
    }
    XQP_ASSIGN_OR_RETURN(ExprPtr content, ParseEnclosedExpr());
    if (is_element) {
      auto ctor = std::make_unique<ElementCtorExpr>();
      ctor->computed_name = computed_name;
      ctor->name = std::move(name);
      if (computed_name) ctor->AddChild(std::move(name_expr));
      ctor->AddChild(std::move(content));
      return ExprPtr(std::move(ctor));
    }
    auto ctor = std::make_unique<AttributeCtorExpr>();
    ctor->computed_name = computed_name;
    ctor->name = std::move(name);
    if (computed_name) ctor->AddChild(std::move(name_expr));
    ctor->AddChild(std::move(content));
    return ExprPtr(std::move(ctor));
  }
  if (kw.text == "text") {
    XQP_ASSIGN_OR_RETURN(ExprPtr content, ParseEnclosedExpr());
    return ExprPtr(std::make_unique<TextCtorExpr>(std::move(content)));
  }
  if (kw.text == "comment") {
    XQP_ASSIGN_OR_RETURN(ExprPtr content, ParseEnclosedExpr());
    return ExprPtr(std::make_unique<CommentCtorExpr>(std::move(content)));
  }
  if (kw.text == "document") {
    XQP_ASSIGN_OR_RETURN(ExprPtr content, ParseEnclosedExpr());
    return ExprPtr(std::make_unique<DocumentCtorExpr>(std::move(content)));
  }
  if (kw.text == "processing-instruction") {
    auto ctor = std::make_unique<PiCtorExpr>();
    XQP_ASSIGN_OR_RETURN(Tok name, lex_.Take());
    if (name.type != TokType::kNCName) {
      return lex_.Error("expected processing-instruction target");
    }
    ctor->target = name.text;
    XQP_ASSIGN_OR_RETURN(ExprPtr content, ParseEnclosedExpr());
    ctor->AddChild(std::move(content));
    return ExprPtr(std::move(ctor));
  }
  return lex_.Error("unknown computed constructor: " + kw.text);
}

Result<ExprPtr> Parser::ParseFunctionCall() {
  XQP_ASSIGN_OR_RETURN(auto parts, ReadLexicalQName());
  std::string uri;
  if (parts.first.empty()) {
    uri = module_->sctx.default_function_ns();
  } else {
    XQP_ASSIGN_OR_RETURN(uri, ResolvePrefix(parts.first, false));
  }
  auto call = std::make_unique<FunctionCallExpr>(
      QName(std::move(uri), parts.first, parts.second));
  XQP_RETURN_NOT_OK(ExpectSym(Sym::kLParen, "'('"));
  XQP_ASSIGN_OR_RETURN(bool empty, AcceptSym(Sym::kRParen));
  if (!empty) {
    while (true) {
      XQP_ASSIGN_OR_RETURN(ExprPtr arg, ParseExprSingle());
      call->AddChild(std::move(arg));
      XQP_ASSIGN_OR_RETURN(bool comma, AcceptSym(Sym::kComma));
      if (!comma) break;
    }
    XQP_RETURN_NOT_OK(ExpectSym(Sym::kRParen, "')'"));
  }
  return ExprPtr(std::move(call));
}

Result<ExprPtr> Parser::ParsePrimary() {
  XQP_ASSIGN_OR_RETURN(const Tok* t, lex_.Peek());
  switch (t->type) {
    case TokType::kInteger: {
      XQP_ASSIGN_OR_RETURN(Tok tok, lex_.Take());
      return ExprPtr(
          std::make_unique<LiteralExpr>(AtomicValue::Integer(tok.ival)));
    }
    case TokType::kDecimal: {
      XQP_ASSIGN_OR_RETURN(Tok tok, lex_.Take());
      return ExprPtr(
          std::make_unique<LiteralExpr>(AtomicValue::Decimal(tok.dval)));
    }
    case TokType::kDouble: {
      XQP_ASSIGN_OR_RETURN(Tok tok, lex_.Take());
      return ExprPtr(
          std::make_unique<LiteralExpr>(AtomicValue::Double(tok.dval)));
    }
    case TokType::kString: {
      XQP_ASSIGN_OR_RETURN(Tok tok, lex_.Take());
      return ExprPtr(
          std::make_unique<LiteralExpr>(AtomicValue::String(tok.text)));
    }
    default:
      break;
  }
  if (t->IsSym(Sym::kDollar)) {
    XQP_RETURN_NOT_OK(lex_.Take().status());
    XQP_ASSIGN_OR_RETURN(QName name, ReadQName(false));
    return ExprPtr(std::make_unique<VarRefExpr>(std::move(name)));
  }
  if (t->IsSym(Sym::kDot)) {
    XQP_RETURN_NOT_OK(lex_.Take().status());
    return ExprPtr(std::make_unique<ContextItemExpr>());
  }
  if (t->IsSym(Sym::kLParen)) {
    XQP_RETURN_NOT_OK(lex_.Take().status());
    XQP_ASSIGN_OR_RETURN(bool empty, AcceptSym(Sym::kRParen));
    if (empty) return ExprPtr(std::make_unique<SequenceExpr>());
    XQP_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
    XQP_RETURN_NOT_OK(ExpectSym(Sym::kRParen, "')'"));
    return e;
  }
  if (t->IsSym(Sym::kLt)) {
    return ParseDirectConstructor();
  }
  if (t->type == TokType::kNCName) {
    XQP_ASSIGN_OR_RETURN(bool computed, LooksLikeComputedCtor());
    if (computed) return ParseComputedConstructor();
    if (t->IsName("validate")) {
      return lex_.Error(
          "schema validation is not supported (optional XQuery feature)");
    }
    if (t->IsName("ordered") || t->IsName("unordered")) {
      XQP_ASSIGN_OR_RETURN(const Tok* next, lex_.Peek(1));
      if (next->IsSym(Sym::kLBrace)) {
        XQP_RETURN_NOT_OK(lex_.Take().status());
        return ParseEnclosedExpr();  // Treated as a no-op wrapper.
      }
    }
    // Fall back to a function call.
    return ParseFunctionCall();
  }
  return lex_.Error("unexpected token in expression");
}

// ---------------------------------------------------------------------------
// Direct constructors (character-level parsing)
// ---------------------------------------------------------------------------

Result<ExprPtr> Parser::ParseDirectConstructor() {
  // Reposition the scanner at '<'.
  XQP_ASSIGN_OR_RETURN(const Tok* lt, lex_.Peek());
  lex_.SetPos(lt->pos);
  if (lex_.PeekChar() != '<') return lex_.Error("expected '<'");
  lex_.AdvanceChars(1);

  // Element name.
  auto read_name = [&]() -> Result<std::pair<std::string, std::string>> {
    size_t start = 0;
    std::string raw;
    (void)start;
    if (!IsNameStartChar(lex_.PeekChar())) {
      return lex_.Error("expected element name");
    }
    while (IsNameChar(lex_.PeekChar()) || lex_.PeekChar() == ':') {
      raw.push_back(lex_.PeekChar());
      lex_.AdvanceChars(1);
    }
    std::string_view prefix, local;
    SplitQName(raw, &prefix, &local);
    return std::make_pair(std::string(prefix), std::string(local));
  };
  auto skip_ws = [&]() {
    while (IsXmlWhitespace(lex_.PeekChar())) lex_.AdvanceChars(1);
  };

  XQP_ASSIGN_OR_RETURN(auto tag_parts, read_name());

  auto ctor = std::make_unique<ElementCtorExpr>();
  ctor_ns_.emplace_back();

  // Attributes: collect raw (namespace decls first).
  struct RawAttr {
    std::string prefix, local;
    std::vector<ExprPtr> parts;  // Literal + enclosed alternating.
    std::string literal_value;   // When fully literal.
    bool fully_literal = true;
  };
  std::vector<RawAttr> attrs;
  bool self_closing = false;
  while (true) {
    skip_ws();
    if (lex_.AtEnd()) return lex_.Error("unterminated direct constructor");
    if (lex_.PeekChar() == '>') {
      lex_.AdvanceChars(1);
      break;
    }
    if (lex_.PeekChar() == '/' && lex_.PeekChar(1) == '>') {
      lex_.AdvanceChars(2);
      self_closing = true;
      break;
    }
    RawAttr attr;
    {
      XQP_ASSIGN_OR_RETURN(auto parts, read_name());
      attr.prefix = parts.first;
      attr.local = parts.second;
    }
    skip_ws();
    if (lex_.PeekChar() != '=') return lex_.Error("expected '='");
    lex_.AdvanceChars(1);
    skip_ws();
    char quote = lex_.PeekChar();
    if (quote != '"' && quote != '\'') {
      return lex_.Error("expected quoted attribute value");
    }
    lex_.AdvanceChars(1);
    std::string literal;
    while (true) {
      char c = lex_.PeekChar();
      if (c == '\0') return lex_.Error("unterminated attribute value");
      if (c == quote) {
        if (lex_.PeekChar(1) == quote) {  // Doubled quote escape.
          literal.push_back(quote);
          lex_.AdvanceChars(2);
          continue;
        }
        lex_.AdvanceChars(1);
        break;
      }
      if (c == '{') {
        if (lex_.PeekChar(1) == '{') {
          literal.push_back('{');
          lex_.AdvanceChars(2);
          continue;
        }
        // Embedded expression.
        if (!literal.empty()) {
          attr.parts.push_back(std::make_unique<LiteralExpr>(
              AtomicValue::String(literal)));
          literal.clear();
        }
        attr.fully_literal = false;
        lex_.AdvanceChars(1);
        size_t resume = lex_.CharPos();
        lex_.SetPos(resume);
        XQP_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
        XQP_ASSIGN_OR_RETURN(const Tok* rb, lex_.Peek());
        if (!rb->IsSym(Sym::kRBrace)) return lex_.Error("expected '}'");
        size_t after = rb->end;
        XQP_RETURN_NOT_OK(lex_.Take().status());
        lex_.SetPos(after);
        attr.parts.push_back(std::move(e));
        continue;
      }
      if (c == '}') {
        if (lex_.PeekChar(1) == '}') {
          literal.push_back('}');
          lex_.AdvanceChars(2);
          continue;
        }
        return lex_.Error("unescaped '}' in attribute value");
      }
      if (c == '&') {
        // Entity reference.
        std::string ent;
        lex_.AdvanceChars(1);
        while (lex_.PeekChar() != ';' && lex_.PeekChar() != '\0') {
          ent.push_back(lex_.PeekChar());
          lex_.AdvanceChars(1);
        }
        if (lex_.PeekChar() != ';') return lex_.Error("unterminated entity");
        lex_.AdvanceChars(1);
        if (ent == "amp") literal.push_back('&');
        else if (ent == "lt") literal.push_back('<');
        else if (ent == "gt") literal.push_back('>');
        else if (ent == "quot") literal.push_back('"');
        else if (ent == "apos") literal.push_back('\'');
        else if (!ent.empty() && ent[0] == '#') {
          long code = (ent.size() > 1 && (ent[1] == 'x' || ent[1] == 'X'))
                          ? std::strtol(ent.c_str() + 2, nullptr, 16)
                          : std::strtol(ent.c_str() + 1, nullptr, 10);
          if (code > 0 && code < 0x80) literal.push_back(static_cast<char>(code));
          else return lex_.Error("unsupported character reference");
        } else {
          return lex_.Error("unknown entity &" + ent + ";");
        }
        continue;
      }
      literal.push_back(c);
      lex_.AdvanceChars(1);
    }
    if (!literal.empty() || (attr.parts.empty() && attr.fully_literal)) {
      if (attr.fully_literal) {
        attr.literal_value = literal;
      } else {
        attr.parts.push_back(
            std::make_unique<LiteralExpr>(AtomicValue::String(literal)));
      }
    }
    attrs.push_back(std::move(attr));
  }

  // Register namespace declarations before resolving names.
  for (const RawAttr& a : attrs) {
    bool is_default_ns = a.prefix.empty() && a.local == "xmlns";
    bool is_prefixed_ns = a.prefix == "xmlns";
    if (is_default_ns || is_prefixed_ns) {
      if (!a.fully_literal) {
        ctor_ns_.pop_back();
        return lex_.Error("namespace declaration value must be literal");
      }
      std::string prefix = is_default_ns ? "" : a.local;
      ctor_ns_.back().emplace_back(prefix, a.literal_value);
      ctor->ns_decls.push_back(
          ElementCtorExpr::NsDecl{prefix, a.literal_value});
    }
  }

  // Resolve the element name.
  {
    auto uri = ResolvePrefix(tag_parts.first, true);
    if (!uri.ok()) {
      ctor_ns_.pop_back();
      return uri.status();
    }
    ctor->name = QName(std::move(uri).value(), tag_parts.first,
                       tag_parts.second);
  }

  // Attribute constructors.
  for (RawAttr& a : attrs) {
    bool is_ns = (a.prefix.empty() && a.local == "xmlns") || a.prefix == "xmlns";
    if (is_ns) continue;
    auto attr_ctor = std::make_unique<AttributeCtorExpr>();
    auto uri = a.prefix.empty() ? Result<std::string>(std::string())
                                : ResolvePrefix(a.prefix, false);
    if (!uri.ok()) {
      ctor_ns_.pop_back();
      return uri.status();
    }
    attr_ctor->name = QName(std::move(uri).value(), a.prefix, a.local);
    if (a.fully_literal) {
      attr_ctor->AddChild(std::make_unique<LiteralExpr>(
          AtomicValue::String(a.literal_value)));
    } else {
      for (ExprPtr& p : a.parts) attr_ctor->AddChild(std::move(p));
    }
    ctor->AddChild(std::move(attr_ctor));
  }

  if (self_closing) {
    ctor_ns_.pop_back();
    // Resume token scanning after the tag.
    lex_.SetPos(lex_.CharPos());
    return ExprPtr(std::move(ctor));
  }

  // Content.
  std::string text;
  auto flush_text = [&](bool at_boundary) {
    if (text.empty()) return;
    bool keep = !IsAllXmlWhitespace(text) ||
                module_->sctx.boundary_space_preserve();
    if (keep) {
      ctor->AddChild(std::make_unique<TextCtorExpr>(
          std::make_unique<LiteralExpr>(AtomicValue::String(text))));
    }
    text.clear();
    (void)at_boundary;
  };

  while (true) {
    char c = lex_.PeekChar();
    if (c == '\0') {
      ctor_ns_.pop_back();
      return lex_.Error("unterminated element constructor");
    }
    if (c == '<') {
      if (lex_.PeekChar(1) == '/') {
        flush_text(true);
        lex_.AdvanceChars(2);
        XQP_ASSIGN_OR_RETURN(auto end_parts, read_name());
        skip_ws();
        if (lex_.PeekChar() != '>') {
          ctor_ns_.pop_back();
          return lex_.Error("expected '>' in end tag");
        }
        lex_.AdvanceChars(1);
        if (end_parts.second != tag_parts.second ||
            end_parts.first != tag_parts.first) {
          ctor_ns_.pop_back();
          return lex_.Error("mismatched end tag </" + end_parts.second + ">");
        }
        break;
      }
      if (lex_.LookingAt("<!--")) {
        flush_text(false);
        lex_.AdvanceChars(4);
        std::string comment;
        while (!lex_.LookingAt("-->")) {
          if (lex_.AtEnd()) {
            ctor_ns_.pop_back();
            return lex_.Error("unterminated comment");
          }
          comment.push_back(lex_.PeekChar());
          lex_.AdvanceChars(1);
        }
        lex_.AdvanceChars(3);
        ctor->AddChild(std::make_unique<CommentCtorExpr>(
            std::make_unique<LiteralExpr>(AtomicValue::String(comment))));
        continue;
      }
      if (lex_.LookingAt("<![CDATA[")) {
        lex_.AdvanceChars(9);
        while (!lex_.LookingAt("]]>")) {
          if (lex_.AtEnd()) {
            ctor_ns_.pop_back();
            return lex_.Error("unterminated CDATA");
          }
          text.push_back(lex_.PeekChar());
          lex_.AdvanceChars(1);
        }
        lex_.AdvanceChars(3);
        continue;
      }
      if (lex_.LookingAt("<?")) {
        flush_text(false);
        lex_.AdvanceChars(2);
        XQP_ASSIGN_OR_RETURN(auto pi_parts, read_name());
        std::string data;
        skip_ws();
        while (!lex_.LookingAt("?>")) {
          if (lex_.AtEnd()) {
            ctor_ns_.pop_back();
            return lex_.Error("unterminated processing instruction");
          }
          data.push_back(lex_.PeekChar());
          lex_.AdvanceChars(1);
        }
        lex_.AdvanceChars(2);
        auto pi = std::make_unique<PiCtorExpr>();
        pi->target = pi_parts.second;
        pi->AddChild(
            std::make_unique<LiteralExpr>(AtomicValue::String(data)));
        ctor->AddChild(std::move(pi));
        continue;
      }
      // Nested element constructor.
      flush_text(false);
      lex_.SetPos(lex_.CharPos());
      XQP_ASSIGN_OR_RETURN(ExprPtr nested, ParseDirectConstructor());
      ctor->AddChild(std::move(nested));
      // ParseDirectConstructor resynchronized the lexer; drop back to chars.
      lex_.SetPos(lex_.CharPos());
      continue;
    }
    if (c == '{') {
      if (lex_.PeekChar(1) == '{') {
        text.push_back('{');
        lex_.AdvanceChars(2);
        continue;
      }
      flush_text(false);
      lex_.AdvanceChars(1);
      lex_.SetPos(lex_.CharPos());
      XQP_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
      XQP_ASSIGN_OR_RETURN(const Tok* rb, lex_.Peek());
      if (!rb->IsSym(Sym::kRBrace)) {
        ctor_ns_.pop_back();
        return lex_.Error("expected '}' after enclosed expression");
      }
      size_t after = rb->end;
      XQP_RETURN_NOT_OK(lex_.Take().status());
      lex_.SetPos(after);
      ctor->AddChild(std::move(e));
      continue;
    }
    if (c == '}') {
      if (lex_.PeekChar(1) == '}') {
        text.push_back('}');
        lex_.AdvanceChars(2);
        continue;
      }
      ctor_ns_.pop_back();
      return lex_.Error("unescaped '}' in element content");
    }
    if (c == '&') {
      lex_.AdvanceChars(1);
      std::string ent;
      while (lex_.PeekChar() != ';' && lex_.PeekChar() != '\0') {
        ent.push_back(lex_.PeekChar());
        lex_.AdvanceChars(1);
      }
      if (lex_.PeekChar() != ';') {
        ctor_ns_.pop_back();
        return lex_.Error("unterminated entity");
      }
      lex_.AdvanceChars(1);
      if (ent == "amp") text.push_back('&');
      else if (ent == "lt") text.push_back('<');
      else if (ent == "gt") text.push_back('>');
      else if (ent == "quot") text.push_back('"');
      else if (ent == "apos") text.push_back('\'');
      else if (!ent.empty() && ent[0] == '#') {
        long code = (ent.size() > 1 && (ent[1] == 'x' || ent[1] == 'X'))
                        ? std::strtol(ent.c_str() + 2, nullptr, 16)
                        : std::strtol(ent.c_str() + 1, nullptr, 10);
        if (code > 0 && code < 0x80) text.push_back(static_cast<char>(code));
        else {
          ctor_ns_.pop_back();
          return lex_.Error("unsupported character reference");
        }
      } else {
        ctor_ns_.pop_back();
        return lex_.Error("unknown entity &" + ent + ";");
      }
      continue;
    }
    text.push_back(c);
    lex_.AdvanceChars(1);
  }

  ctor_ns_.pop_back();
  // Resynchronize token scanning after the constructor.
  lex_.SetPos(lex_.CharPos());
  return ExprPtr(std::move(ctor));
}

// ---------------------------------------------------------------------------

Result<std::unique_ptr<ParsedModule>> Parser::ParseModule() {
  module_ = std::make_unique<ParsedModule>();
  XQP_RETURN_NOT_OK(ParseProlog());
  XQP_ASSIGN_OR_RETURN(module_->body, ParseExpr());
  XQP_ASSIGN_OR_RETURN(const Tok* t, lex_.Peek());
  if (t->type != TokType::kEof) {
    return lex_.Error("unexpected trailing content after query");
  }
  return std::move(module_);
}

}  // namespace

Result<std::unique_ptr<ParsedModule>> ParseQuery(std::string_view query,
                                                 uint32_t max_expr_depth) {
  Parser parser(query, max_expr_depth);
  return parser.ParseModule();
}

Result<std::unique_ptr<ParsedModule>> ParseQuery(std::string_view query) {
  return ParseQuery(query, 0);
}

}  // namespace xqp
