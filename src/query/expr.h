#ifndef XQP_QUERY_EXPR_H_
#define XQP_QUERY_EXPR_H_

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "query/sequence_type.h"
#include "xml/atomic_value.h"
#include "xml/document.h"
#include "xml/qname.h"

namespace xqp {

/// Expression kinds. The paper: "(almost) 1-1 mapping between expressions in
/// XQuery and internal ones"; this is its 26-kind expression hierarchy.
enum class ExprKind : uint8_t {
  kLiteral,
  kVarRef,
  kContextItem,
  kSequence,        // Comma operator.
  kRange,           // "1 to 10".
  kArithmetic,
  kUnary,
  kComparison,      // Value / general / node / order comparisons.
  kLogical,         // and / or.
  kRoot,            // Leading "/": root of the context node's tree.
  kPath,            // E1/E2 with optional ddo (doc order + dedup).
  kStep,            // axis::node-test.
  kFilter,          // E[pred]...
  kFlwor,
  kQuantified,      // some / every.
  kIf,
  kTypeswitch,
  kInstanceOf,
  kTreatAs,
  kCastAs,
  kCastableAs,
  kUnion,
  kIntersectExcept,
  kFunctionCall,
  kElementCtor,
  kAttributeCtor,
  kTextCtor,
  kCommentCtor,
  kPiCtor,
  kDocumentCtor,
  kTryCatch,  // Extension: the paper's "missing functionality" try-catch.
};

std::string_view ExprKindName(ExprKind kind);

/// XPath axes. The first six are the ones XQuery requires; the rest belong
/// to the optional "full axis feature", which we also support.
enum class Axis : uint8_t {
  kChild,
  kDescendant,
  kDescendantOrSelf,
  kSelf,
  kAttribute,
  kParent,
  kAncestor,
  kAncestorOrSelf,
  kFollowingSibling,
  kPrecedingSibling,
  kFollowing,
  kPreceding,
};

std::string_view AxisName(Axis axis);

/// True for axes that walk towards the document start (results arrive in
/// reverse document order).
bool IsReverseAxis(Axis axis);

/// A node test: by kind, by name (with wildcards), or both.
struct NodeTest {
  enum class Kind : uint8_t {
    kAnyKind,   // node()
    kName,      // name / prefix:* / *:local / *
    kText,      // text()
    kComment,   // comment()
    kPi,        // processing-instruction() / processing-instruction("t")
    kDocument,  // document-node()
    kElement,   // element() / element(name)
    kAttribute, // attribute() / attribute(name)
  };

  Kind kind = Kind::kAnyKind;
  bool wildcard_uri = false;
  bool wildcard_local = false;
  std::string uri;
  std::string local;
  std::string pi_target;  // Non-empty for processing-instruction("t").

  static NodeTest AnyName() {
    NodeTest t;
    t.kind = Kind::kName;
    t.wildcard_uri = true;
    t.wildcard_local = true;
    return t;
  }
  static NodeTest Name(std::string uri, std::string local) {
    NodeTest t;
    t.kind = Kind::kName;
    t.uri = std::move(uri);
    t.local = std::move(local);
    return t;
  }

  /// Does node `i` of `doc` satisfy this test? `principal_attribute` is true
  /// when the step's axis is the attribute axis (name tests then select
  /// attributes instead of elements).
  bool Matches(const Document& doc, NodeIndex i,
               bool principal_attribute) const;

  std::string ToString() const;
};

/// Per-expression dataflow properties, computed by opt/properties.cc. These
/// are the analyses the paper lists under "Xquery expression analysis":
/// doc-order and distinctness guarantees, node creation, error potential,
/// context sensitivity.
struct ExprProps {
  bool analyzed = false;
  /// Result is guaranteed to be in document order (when all items are nodes).
  bool ordered = false;
  /// Result is guaranteed free of duplicate nodes.
  bool distinct = false;
  /// Result may contain newly constructed nodes.
  bool creates_nodes = false;
  /// Evaluation may raise a dynamic/type error.
  bool may_raise_error = true;
  /// Expression reads the context item.
  bool uses_context = false;
  /// Expression calls position() / last() (directly, outside predicates).
  bool uses_position = false;
  bool uses_last = false;
  /// Result items are guaranteed to all be nodes.
  bool nodes_only = false;
  /// Result items are guaranteed to all be atomic values.
  bool atomics_only = false;
  /// Result is a singleton (exactly one item).
  bool singleton = false;
  /// No result node is an ancestor of another result node (key premise for
  /// eliding ddo after descendant steps).
  bool no_two_nested = false;
  /// Expression is a compile-time constant (safe to fold).
  bool constant = false;
};

/// Base class of the internal expression tree. Children are owned uniformly
/// by the base so rewrite rules and analyses can traverse generically;
/// subclasses define what each child position means.
class Expr {
 public:
  /// Iterative teardown (see expr.cc): destroying a pathologically deep
  /// tree must not recurse once per nesting level.
  virtual ~Expr();

  ExprKind kind() const { return kind_; }

  size_t NumChildren() const { return children_.size(); }
  Expr* child(size_t i) const { return children_[i].get(); }
  std::unique_ptr<Expr>& child_slot(size_t i) { return children_[i]; }
  void AddChild(std::unique_ptr<Expr> e) { children_.push_back(std::move(e)); }
  std::unique_ptr<Expr> TakeChild(size_t i) { return std::move(children_[i]); }
  void SetChild(size_t i, std::unique_ptr<Expr> e) {
    children_[i] = std::move(e);
  }
  void InsertChild(size_t i, std::unique_ptr<Expr> e) {
    children_.insert(children_.begin() + i, std::move(e));
  }
  void RemoveChild(size_t i) { children_.erase(children_.begin() + i); }

  /// Deep copy (for function inlining and rule experimentation).
  virtual std::unique_ptr<Expr> Clone() const = 0;

  /// Compact s-expression dump for tests and plan explanation.
  virtual std::string ToString() const;

  /// Analysis annotations (see opt/properties.cc).
  ExprProps props;

 protected:
  explicit Expr(ExprKind kind) : kind_(kind) {}
  /// Clones children into `dst` (helper for subclass Clone()).
  void CloneChildrenInto(Expr* dst) const;
  std::string ChildrenToString() const;

  ExprKind kind_;
  std::vector<std::unique_ptr<Expr>> children_;
};

using ExprPtr = std::unique_ptr<Expr>;

// ---------------------------------------------------------------------------
// Leaf expressions
// ---------------------------------------------------------------------------

class LiteralExpr : public Expr {
 public:
  explicit LiteralExpr(AtomicValue value)
      : Expr(ExprKind::kLiteral), value(std::move(value)) {}
  std::unique_ptr<Expr> Clone() const override;
  std::string ToString() const override;

  AtomicValue value;
};

/// Variable reference. `slot` indexes the dynamic-context frame; globals are
/// resolved against the module frame.
class VarRefExpr : public Expr {
 public:
  explicit VarRefExpr(QName name)
      : Expr(ExprKind::kVarRef), name(std::move(name)) {}
  std::unique_ptr<Expr> Clone() const override;
  std::string ToString() const override;

  QName name;
  int slot = -1;
  bool is_global = false;
};

class ContextItemExpr : public Expr {
 public:
  ContextItemExpr() : Expr(ExprKind::kContextItem) {}
  std::unique_ptr<Expr> Clone() const override;
  std::string ToString() const override { return "."; }
};

class RootExpr : public Expr {
 public:
  RootExpr() : Expr(ExprKind::kRoot) {}
  std::unique_ptr<Expr> Clone() const override;
  std::string ToString() const override { return "(root)"; }
};

/// Step expression: axis::node-test applied to the context item.
class StepExpr : public Expr {
 public:
  StepExpr(Axis axis, NodeTest test)
      : Expr(ExprKind::kStep), axis(axis), test(std::move(test)) {}
  std::unique_ptr<Expr> Clone() const override;
  std::string ToString() const override;

  Axis axis;
  NodeTest test;
};

// ---------------------------------------------------------------------------
// Composite expressions
// ---------------------------------------------------------------------------

class SequenceExpr : public Expr {
 public:
  SequenceExpr() : Expr(ExprKind::kSequence) {}
  std::unique_ptr<Expr> Clone() const override;
  std::string ToString() const override;
};

class RangeExpr : public Expr {
 public:
  RangeExpr(ExprPtr lo, ExprPtr hi) : Expr(ExprKind::kRange) {
    AddChild(std::move(lo));
    AddChild(std::move(hi));
  }
  std::unique_ptr<Expr> Clone() const override;
  std::string ToString() const override;
};

enum class ArithOp : uint8_t { kAdd, kSub, kMul, kDiv, kIDiv, kMod };
std::string_view ArithOpName(ArithOp op);

class ArithmeticExpr : public Expr {
 public:
  ArithmeticExpr(ArithOp op, ExprPtr lhs, ExprPtr rhs)
      : Expr(ExprKind::kArithmetic), op(op) {
    AddChild(std::move(lhs));
    AddChild(std::move(rhs));
  }
  std::unique_ptr<Expr> Clone() const override;
  std::string ToString() const override;

  ArithOp op;
};

class UnaryExpr : public Expr {
 public:
  UnaryExpr(bool negate, ExprPtr operand)
      : Expr(ExprKind::kUnary), negate(negate) {
    AddChild(std::move(operand));
  }
  std::unique_ptr<Expr> Clone() const override;
  std::string ToString() const override;

  bool negate;
};

/// All four comparison families from the paper's comparison table.
enum class CompOp : uint8_t {
  // Value comparisons.
  kValueEq, kValueNe, kValueLt, kValueLe, kValueGt, kValueGe,
  // General (existential) comparisons.
  kGenEq, kGenNe, kGenLt, kGenLe, kGenGt, kGenGe,
  // Node identity.
  kIs, kIsNot,
  // Document order.
  kBefore, kAfter,
};
std::string_view CompOpName(CompOp op);
bool IsGeneralComp(CompOp op);
bool IsValueComp(CompOp op);

/// Access-path strategy for a doc()-anchored path/twig shape. kAuto means
/// "undecided" (the cost-based planner chooses at execution time); the
/// others pin one strategy — pure navigation, a cascade of binary
/// structural semi-joins, a holistic twig join over per-tag postings, or a
/// direct synopsis / value-index answer. A pinned strategy that turns out
/// inapplicable for a given shape degrades to navigation, so results stay
/// bit-identical (see opt/access_path.h).
enum class AccessPath : uint8_t { kAuto, kNav, kSJoin, kTwig, kIndex };

/// "auto" / "nav" / "sjoin" / "twig" / "index".
const char* AccessPathName(AccessPath p);

/// Inverse of AccessPathName; nullopt for unrecognized spellings.
std::optional<AccessPath> ParseAccessPath(std::string_view name);

class ComparisonExpr : public Expr {
 public:
  ComparisonExpr(CompOp op, ExprPtr lhs, ExprPtr rhs)
      : Expr(ExprKind::kComparison), op(op) {
    AddChild(std::move(lhs));
    AddChild(std::move(rhs));
  }
  std::unique_ptr<Expr> Clone() const override;
  std::string ToString() const override;

  CompOp op;
};

class LogicalExpr : public Expr {
 public:
  LogicalExpr(bool is_and, ExprPtr lhs, ExprPtr rhs)
      : Expr(ExprKind::kLogical), is_and(is_and) {
    AddChild(std::move(lhs));
    AddChild(std::move(rhs));
  }
  std::unique_ptr<Expr> Clone() const override;
  std::string ToString() const override;

  bool is_and;
};

/// E1/E2: evaluate E2 for each item of E1 (bound as context item), then
/// sort the concatenation in document order (`needs_sort`) and remove
/// duplicate nodes (`needs_dedup`). The ddo elision rewrite (paper:
/// "semantic conditions" — $doc/a/b/c needs neither; $doc//a/b needs
/// sorting but has no duplicates) clears the flags when the guarantees
/// hold; experiment E12 measures the payoff.
class PathExpr : public Expr {
 public:
  PathExpr(ExprPtr lhs, ExprPtr rhs) : Expr(ExprKind::kPath) {
    AddChild(std::move(lhs));
    AddChild(std::move(rhs));
  }
  std::unique_ptr<Expr> Clone() const override;
  std::string ToString() const override;

  bool needs_sort = true;
  bool needs_dedup = true;
  /// Set by the index-marking rule (opt/rules_path.cc) when this path is in
  /// the index-answerable fragment (doc('uri')-anchored named-step chain,
  /// at most one value predicate — see index/index_planner.h). Execution
  /// then offers the path to the document's synopsis / value index first
  /// and falls back to normal evaluation when the index declines.
  bool index_candidate = false;
  /// EXPLAIN annotation filled in by the cost-based access-path selector
  /// (opt/access_path.h) when the document's indexes are warm at explain
  /// time: the strategy the selector would choose and its cardinality
  /// estimate. Purely informational — execution re-derives the decision
  /// from live indexes, so these can never go stale.
  AccessPath access_path = AccessPath::kAuto;
  uint64_t access_est = 0;
};

/// E[p1][p2]...: child 0 is the base, children 1..N the predicates.
class FilterExpr : public Expr {
 public:
  explicit FilterExpr(ExprPtr base) : Expr(ExprKind::kFilter) {
    AddChild(std::move(base));
  }
  std::unique_ptr<Expr> Clone() const override;
  std::string ToString() const override;
};

/// FLWOR. Clause i's expression is child i; the return expression is the
/// last child. Order-by keys appear as kOrderSpec clauses.
class FlworExpr : public Expr {
 public:
  struct Clause {
    enum class Type : uint8_t { kFor, kLet, kWhere, kOrderSpec };
    Type type;
    QName var;           // kFor / kLet.
    QName pos_var;       // kFor "at $p"; empty local when absent.
    int var_slot = -1;
    int pos_slot = -1;
    // kOrderSpec modifiers.
    bool descending = false;
    bool empty_least = true;

    bool has_pos_var() const { return !pos_var.local.empty(); }
  };

  FlworExpr() : Expr(ExprKind::kFlwor) {}
  std::unique_ptr<Expr> Clone() const override;
  std::string ToString() const override;

  Expr* return_expr() const { return child(NumChildren() - 1); }
  size_t NumClauses() const { return clauses.size(); }

  std::vector<Clause> clauses;
};

/// some/every $v1 in E1, ... satisfies E. Binding i's domain is child i;
/// the satisfies expression is the last child.
class QuantifiedExpr : public Expr {
 public:
  struct Binding {
    QName var;
    int var_slot = -1;
  };

  explicit QuantifiedExpr(bool is_every)
      : Expr(ExprKind::kQuantified), is_every(is_every) {}
  std::unique_ptr<Expr> Clone() const override;
  std::string ToString() const override;

  bool is_every;
  std::vector<Binding> bindings;
};

class IfExpr : public Expr {
 public:
  IfExpr(ExprPtr cond, ExprPtr then_e, ExprPtr else_e) : Expr(ExprKind::kIf) {
    AddChild(std::move(cond));
    AddChild(std::move(then_e));
    AddChild(std::move(else_e));
  }
  std::unique_ptr<Expr> Clone() const override;
  std::string ToString() const override;
};

/// typeswitch(E) case [$v as] T return E ... default [$v] return E.
/// Child 0 is the operand; child 1..N the case returns; the last child the
/// default return.
class TypeswitchExpr : public Expr {
 public:
  struct Case {
    SequenceType type;
    QName var;  // Empty local when no variable is bound.
    int var_slot = -1;

    bool has_var() const { return !var.local.empty(); }
  };

  TypeswitchExpr() : Expr(ExprKind::kTypeswitch) {}
  std::unique_ptr<Expr> Clone() const override;
  std::string ToString() const override;

  std::vector<Case> cases;
  QName default_var;
  int default_var_slot = -1;
  bool default_has_var() const { return !default_var.local.empty(); }
};

class InstanceOfExpr : public Expr {
 public:
  InstanceOfExpr(ExprPtr operand, SequenceType type)
      : Expr(ExprKind::kInstanceOf), type(std::move(type)) {
    AddChild(std::move(operand));
  }
  std::unique_ptr<Expr> Clone() const override;
  std::string ToString() const override;

  SequenceType type;
};

class TreatExpr : public Expr {
 public:
  TreatExpr(ExprPtr operand, SequenceType type)
      : Expr(ExprKind::kTreatAs), type(std::move(type)) {
    AddChild(std::move(operand));
  }
  std::unique_ptr<Expr> Clone() const override;
  std::string ToString() const override;

  SequenceType type;
};

class CastExpr : public Expr {
 public:
  CastExpr(ExprPtr operand, XsType target, bool optional)
      : Expr(ExprKind::kCastAs), target(target), optional(optional) {
    AddChild(std::move(operand));
  }
  std::unique_ptr<Expr> Clone() const override;
  std::string ToString() const override;

  XsType target;
  bool optional;  // "cast as T?" accepts the empty sequence.
};

class CastableExpr : public Expr {
 public:
  CastableExpr(ExprPtr operand, XsType target, bool optional)
      : Expr(ExprKind::kCastableAs), target(target), optional(optional) {
    AddChild(std::move(operand));
  }
  std::unique_ptr<Expr> Clone() const override;
  std::string ToString() const override;

  XsType target;
  bool optional;
};

class UnionExpr : public Expr {
 public:
  UnionExpr(ExprPtr lhs, ExprPtr rhs) : Expr(ExprKind::kUnion) {
    AddChild(std::move(lhs));
    AddChild(std::move(rhs));
  }
  std::unique_ptr<Expr> Clone() const override;
  std::string ToString() const override;
};

class IntersectExceptExpr : public Expr {
 public:
  IntersectExceptExpr(bool is_except, ExprPtr lhs, ExprPtr rhs)
      : Expr(ExprKind::kIntersectExcept), is_except(is_except) {
    AddChild(std::move(lhs));
    AddChild(std::move(rhs));
  }
  std::unique_ptr<Expr> Clone() const override;
  std::string ToString() const override;

  bool is_except;
};

/// Function call; children are the arguments. Name resolution happens at
/// normalization: builtin calls get `builtin >= 0` (an index into the
/// builtin registry), user calls get `user_index >= 0` (an index into the
/// compiled module's function table).
class FunctionCallExpr : public Expr {
 public:
  explicit FunctionCallExpr(QName name)
      : Expr(ExprKind::kFunctionCall), name(std::move(name)) {}
  std::unique_ptr<Expr> Clone() const override;
  std::string ToString() const override;

  QName name;
  int builtin = -1;
  int user_index = -1;
};

// ---------------------------------------------------------------------------
// Node constructors
// ---------------------------------------------------------------------------

/// Element constructor. With a computed name, child 0 is the name
/// expression; remaining children are content. Direct constructors desugar
/// to this form, with attribute constructors leading the content list.
class ElementCtorExpr : public Expr {
 public:
  struct NsDecl {
    std::string prefix;
    std::string uri;
  };

  ElementCtorExpr() : Expr(ExprKind::kElementCtor) {}
  std::unique_ptr<Expr> Clone() const override;
  std::string ToString() const override;

  bool computed_name = false;
  QName name;                   // When !computed_name.
  std::vector<NsDecl> ns_decls;  // Literal xmlns attributes.
  size_t ContentStart() const { return computed_name ? 1 : 0; }
};

class AttributeCtorExpr : public Expr {
 public:
  AttributeCtorExpr() : Expr(ExprKind::kAttributeCtor) {}
  std::unique_ptr<Expr> Clone() const override;
  std::string ToString() const override;

  bool computed_name = false;
  QName name;
  size_t ContentStart() const { return computed_name ? 1 : 0; }
};

class TextCtorExpr : public Expr {
 public:
  explicit TextCtorExpr(ExprPtr content) : Expr(ExprKind::kTextCtor) {
    AddChild(std::move(content));
  }
  std::unique_ptr<Expr> Clone() const override;
  std::string ToString() const override;
};

class CommentCtorExpr : public Expr {
 public:
  explicit CommentCtorExpr(ExprPtr content) : Expr(ExprKind::kCommentCtor) {
    AddChild(std::move(content));
  }
  std::unique_ptr<Expr> Clone() const override;
  std::string ToString() const override;
};

class PiCtorExpr : public Expr {
 public:
  PiCtorExpr() : Expr(ExprKind::kPiCtor) {}
  std::unique_ptr<Expr> Clone() const override;
  std::string ToString() const override;

  std::string target;  // Literal target (computed targets unsupported).
};

/// try { E1 } catch { E2 }: evaluates E1; if a dynamic or type error is
/// raised, evaluates E2 instead. An engine extension — the paper lists a
/// try-catch mechanism under XQuery's "missing functionalities" (XQuery 3.0
/// later standardized it). Static errors are not catchable.
class TryCatchExpr : public Expr {
 public:
  TryCatchExpr(ExprPtr try_expr, ExprPtr catch_expr)
      : Expr(ExprKind::kTryCatch) {
    AddChild(std::move(try_expr));
    AddChild(std::move(catch_expr));
  }
  std::unique_ptr<Expr> Clone() const override;
  std::string ToString() const override;
};

class DocumentCtorExpr : public Expr {
 public:
  explicit DocumentCtorExpr(ExprPtr content) : Expr(ExprKind::kDocumentCtor) {
    AddChild(std::move(content));
  }
  std::unique_ptr<Expr> Clone() const override;
  std::string ToString() const override;
};

}  // namespace xqp

#endif  // XQP_QUERY_EXPR_H_
