#ifndef XQP_QUERY_LEXER_H_
#define XQP_QUERY_LEXER_H_

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>

#include "base/status.h"

namespace xqp {

/// Token types of the XQuery lexer. XQuery has no reserved words, so
/// keywords surface as kNCName and are recognized contextually by the
/// parser.
enum class TokType : uint8_t {
  kEof,
  kNCName,
  kInteger,
  kDecimal,
  kDouble,
  kString,
  kSymbol,
};

enum class Sym : uint8_t {
  kNone,
  kLParen, kRParen, kLBracket, kRBracket, kLBrace, kRBrace,
  kComma, kSemicolon, kColon, kColonColon, kDollar, kAt,
  kDot, kDotDot, kSlash, kSlashSlash, kStar, kPlus, kMinus,
  kEq, kNe, kLt, kLe, kGt, kGe, kLtLt, kGtGt,
  kPipe, kAssign, kQuestion,
};

struct Tok {
  TokType type = TokType::kEof;
  Sym sym = Sym::kNone;
  std::string text;   // NCName text or decoded string literal.
  int64_t ival = 0;   // kInteger.
  double dval = 0;    // kDecimal / kDouble.
  size_t pos = 0;     // Byte offset of the first character.
  size_t end = 0;     // Byte offset one past the last character.
  size_t line = 1;
  size_t column = 1;

  bool IsSym(Sym s) const { return type == TokType::kSymbol && sym == s; }
  bool IsName(std::string_view name) const {
    return type == TokType::kNCName && text == name;
  }
};

/// On-demand XQuery lexer with unbounded lookahead and random repositioning.
/// Repositioning (SetPos) lets the parser drop to character-level scanning
/// for direct element constructors — the context-sensitive part of the
/// grammar — and resume token scanning afterwards.
class Lexer {
 public:
  explicit Lexer(std::string_view input) : input_(input) {}

  /// Peeks `ahead` tokens forward (0 = next token). Lexing errors surface
  /// as a status from here.
  Result<const Tok*> Peek(size_t ahead = 0);

  /// Consumes and returns the next token.
  Result<Tok> Take();

  /// Byte offset where the *next unbuffered* token scan would start. Call
  /// only when the lookahead buffer is empty or after SetPos.
  size_t CharPos() const { return pos_; }

  /// Clears the lookahead buffer and repositions the scanner.
  void SetPos(size_t pos);

  /// Character-level access for direct-constructor parsing.
  char PeekChar(size_t ahead = 0) const {
    return pos_ + ahead < input_.size() ? input_[pos_ + ahead] : '\0';
  }
  bool LookingAt(std::string_view s) const {
    return input_.compare(pos_, s.size(), s) == 0;
  }
  void AdvanceChars(size_t n);
  bool AtEnd() const { return pos_ >= input_.size(); }

  std::string_view input() const { return input_; }
  size_t line() const { return line_; }
  size_t column() const { return column_; }

  /// "line:column: message" parse error at the current position.
  Status Error(const std::string& message) const;

 private:
  Result<Tok> Scan();
  Status SkipWhitespaceAndComments();

  std::string_view input_;
  size_t pos_ = 0;
  size_t line_ = 1;
  size_t column_ = 1;
  std::deque<Tok> buffer_;
};

}  // namespace xqp

#endif  // XQP_QUERY_LEXER_H_
