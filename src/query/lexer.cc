#include "query/lexer.h"

#include <cctype>
#include <cstdlib>

#include "base/string_util.h"

namespace xqp {

void Lexer::AdvanceChars(size_t n) {
  pos_ = std::min(pos_ + n, input_.size());
}

void Lexer::SetPos(size_t pos) {
  buffer_.clear();
  pos_ = std::min(pos, input_.size());
}

Status Lexer::Error(const std::string& message) const {
  // Line/column computed on demand; errors are rare.
  size_t line = 1;
  size_t column = 1;
  for (size_t i = 0; i < pos_ && i < input_.size(); ++i) {
    if (input_[i] == '\n') {
      ++line;
      column = 1;
    } else {
      ++column;
    }
  }
  return Status::StaticError(std::to_string(line) + ":" +
                             std::to_string(column) + ": " + message);
}

Status Lexer::SkipWhitespaceAndComments() {
  while (pos_ < input_.size()) {
    char c = input_[pos_];
    if (IsXmlWhitespace(c)) {
      ++pos_;
      continue;
    }
    if (c == '(' && pos_ + 1 < input_.size() && input_[pos_ + 1] == ':') {
      // Nestable XQuery comment "(: ... :)".
      int depth = 1;
      pos_ += 2;
      while (pos_ < input_.size() && depth > 0) {
        if (input_.compare(pos_, 2, "(:") == 0) {
          ++depth;
          pos_ += 2;
        } else if (input_.compare(pos_, 2, ":)") == 0) {
          --depth;
          pos_ += 2;
        } else {
          ++pos_;
        }
      }
      if (depth > 0) return Error("unterminated comment");
      continue;
    }
    break;
  }
  return Status::OK();
}

Result<Tok> Lexer::Scan() {
  XQP_RETURN_NOT_OK(SkipWhitespaceAndComments());
  Tok t;
  t.pos = pos_;
  if (pos_ >= input_.size()) {
    t.type = TokType::kEof;
    t.end = pos_;
    return t;
  }
  char c = input_[pos_];

  // Names.
  if (IsNameStartChar(c)) {
    size_t start = pos_;
    while (pos_ < input_.size() && IsNameChar(input_[pos_])) ++pos_;
    t.type = TokType::kNCName;
    t.text.assign(input_.substr(start, pos_ - start));
    t.end = pos_;
    return t;
  }

  // Numbers.
  if (std::isdigit(static_cast<unsigned char>(c)) ||
      (c == '.' && pos_ + 1 < input_.size() &&
       std::isdigit(static_cast<unsigned char>(input_[pos_ + 1])))) {
    size_t start = pos_;
    bool has_dot = false;
    bool has_exp = false;
    while (pos_ < input_.size()) {
      char d = input_[pos_];
      if (std::isdigit(static_cast<unsigned char>(d))) {
        ++pos_;
      } else if (d == '.' && !has_dot && !has_exp) {
        // ".." must stay a symbol: "1..2" lexes as 1 .. 2.
        if (pos_ + 1 < input_.size() && input_[pos_ + 1] == '.') break;
        has_dot = true;
        ++pos_;
      } else if ((d == 'e' || d == 'E') && !has_exp) {
        has_exp = true;
        ++pos_;
        if (pos_ < input_.size() &&
            (input_[pos_] == '+' || input_[pos_] == '-')) {
          ++pos_;
        }
      } else {
        break;
      }
    }
    std::string text(input_.substr(start, pos_ - start));
    t.end = pos_;
    if (has_exp) {
      t.type = TokType::kDouble;
      t.dval = std::strtod(text.c_str(), nullptr);
    } else if (has_dot) {
      t.type = TokType::kDecimal;
      t.dval = std::strtod(text.c_str(), nullptr);
    } else {
      t.type = TokType::kInteger;
      t.ival = std::strtoll(text.c_str(), nullptr, 10);
    }
    return t;
  }

  // String literals (with doubled-quote escapes and entity references).
  if (c == '"' || c == '\'') {
    char quote = c;
    ++pos_;
    std::string raw;
    while (true) {
      if (pos_ >= input_.size()) return Error("unterminated string literal");
      char d = input_[pos_];
      if (d == quote) {
        if (pos_ + 1 < input_.size() && input_[pos_ + 1] == quote) {
          raw.push_back(quote);
          pos_ += 2;
          continue;
        }
        ++pos_;
        break;
      }
      raw.push_back(d);
      ++pos_;
    }
    // Decode predefined and numeric entity references.
    std::string decoded;
    decoded.reserve(raw.size());
    for (size_t i = 0; i < raw.size();) {
      if (raw[i] != '&') {
        decoded.push_back(raw[i++]);
        continue;
      }
      size_t semi = raw.find(';', i);
      if (semi == std::string::npos) return Error("unterminated entity in string");
      std::string ent = raw.substr(i + 1, semi - i - 1);
      if (ent == "amp") decoded.push_back('&');
      else if (ent == "lt") decoded.push_back('<');
      else if (ent == "gt") decoded.push_back('>');
      else if (ent == "quot") decoded.push_back('"');
      else if (ent == "apos") decoded.push_back('\'');
      else if (!ent.empty() && ent[0] == '#') {
        long code = (ent.size() > 1 && (ent[1] == 'x' || ent[1] == 'X'))
                        ? std::strtol(ent.c_str() + 2, nullptr, 16)
                        : std::strtol(ent.c_str() + 1, nullptr, 10);
        if (code <= 0 || code > 0x10FFFF) return Error("bad character reference");
        // ASCII fast path; multi-byte handled minimally.
        if (code < 0x80) {
          decoded.push_back(static_cast<char>(code));
        } else if (code < 0x800) {
          decoded.push_back(static_cast<char>(0xC0 | (code >> 6)));
          decoded.push_back(static_cast<char>(0x80 | (code & 0x3F)));
        } else {
          decoded.push_back(static_cast<char>(0xE0 | (code >> 12)));
          decoded.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
          decoded.push_back(static_cast<char>(0x80 | (code & 0x3F)));
        }
      } else {
        return Error("unknown entity &" + ent + ";");
      }
      i = semi + 1;
    }
    t.type = TokType::kString;
    t.text = std::move(decoded);
    t.end = pos_;
    return t;
  }

  // Symbols.
  auto sym2 = [&](char a, char b, Sym two, Sym one) {
    if (pos_ + 1 < input_.size() && input_[pos_] == a && input_[pos_ + 1] == b) {
      t.sym = two;
      pos_ += 2;
    } else {
      t.sym = one;
      ++pos_;
    }
  };
  t.type = TokType::kSymbol;
  switch (c) {
    case '(': t.sym = Sym::kLParen; ++pos_; break;
    case ')': t.sym = Sym::kRParen; ++pos_; break;
    case '[': t.sym = Sym::kLBracket; ++pos_; break;
    case ']': t.sym = Sym::kRBracket; ++pos_; break;
    case '{': t.sym = Sym::kLBrace; ++pos_; break;
    case '}': t.sym = Sym::kRBrace; ++pos_; break;
    case ',': t.sym = Sym::kComma; ++pos_; break;
    case ';': t.sym = Sym::kSemicolon; ++pos_; break;
    case '$': t.sym = Sym::kDollar; ++pos_; break;
    case '@': t.sym = Sym::kAt; ++pos_; break;
    case '|': t.sym = Sym::kPipe; ++pos_; break;
    case '?': t.sym = Sym::kQuestion; ++pos_; break;
    case '+': t.sym = Sym::kPlus; ++pos_; break;
    case '-': t.sym = Sym::kMinus; ++pos_; break;
    case '*': t.sym = Sym::kStar; ++pos_; break;
    case '=': t.sym = Sym::kEq; ++pos_; break;
    case ':': sym2(':', ':', Sym::kColonColon, Sym::kColon);
      if (t.sym == Sym::kColon && pos_ < input_.size() && input_[pos_] == '=') {
        t.sym = Sym::kAssign;
        ++pos_;
      }
      break;
    case '.': sym2('.', '.', Sym::kDotDot, Sym::kDot); break;
    case '/': sym2('/', '/', Sym::kSlashSlash, Sym::kSlash); break;
    case '!':
      if (pos_ + 1 < input_.size() && input_[pos_ + 1] == '=') {
        t.sym = Sym::kNe;
        pos_ += 2;
      } else {
        return Error("unexpected '!'");
      }
      break;
    case '<':
      if (pos_ + 1 < input_.size() && input_[pos_ + 1] == '<') {
        t.sym = Sym::kLtLt;
        pos_ += 2;
      } else if (pos_ + 1 < input_.size() && input_[pos_ + 1] == '=') {
        t.sym = Sym::kLe;
        pos_ += 2;
      } else {
        t.sym = Sym::kLt;
        ++pos_;
      }
      break;
    case '>':
      if (pos_ + 1 < input_.size() && input_[pos_ + 1] == '>') {
        t.sym = Sym::kGtGt;
        pos_ += 2;
      } else if (pos_ + 1 < input_.size() && input_[pos_ + 1] == '=') {
        t.sym = Sym::kGe;
        pos_ += 2;
      } else {
        t.sym = Sym::kGt;
        ++pos_;
      }
      break;
    default:
      return Error(std::string("unexpected character '") + c + "'");
  }
  t.end = pos_;
  return t;
}

Result<const Tok*> Lexer::Peek(size_t ahead) {
  while (buffer_.size() <= ahead) {
    XQP_ASSIGN_OR_RETURN(Tok t, Scan());
    buffer_.push_back(std::move(t));
  }
  return &buffer_[ahead];
}

Result<Tok> Lexer::Take() {
  if (buffer_.empty()) {
    return Scan();
  }
  Tok t = std::move(buffer_.front());
  buffer_.pop_front();
  return t;
}

}  // namespace xqp
