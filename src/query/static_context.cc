#include "query/static_context.h"

namespace xqp {

StaticContext::StaticContext() {
  namespaces_["xml"] = "http://www.w3.org/XML/1998/namespace";
  namespaces_["xs"] = std::string(kXsNamespace);
  namespaces_["xsi"] = "http://www.w3.org/2001/XMLSchema-instance";
  namespaces_["xdt"] = std::string(kXdtNamespace);
  namespaces_["fn"] = std::string(kFnNamespace);
  // "xf" appears throughout the paper's examples as the F&O prefix.
  namespaces_["xf"] = std::string(kFnNamespace);
  namespaces_["local"] = std::string(kLocalNamespace);
  default_function_ns_ = std::string(kFnNamespace);
}

Status StaticContext::DeclareNamespace(const std::string& prefix,
                                       const std::string& uri) {
  if (prefix == "xml" || prefix == "xmlns") {
    return Status::StaticError("cannot redeclare the '" + prefix +
                               "' namespace prefix");
  }
  namespaces_[prefix] = uri;
  return Status::OK();
}

Result<std::string> StaticContext::ResolvePrefix(
    std::string_view prefix, bool use_default_element_ns) const {
  if (prefix.empty()) {
    return use_default_element_ns ? default_element_ns_ : std::string();
  }
  auto it = namespaces_.find(prefix);
  if (it == namespaces_.end()) {
    return Status::StaticError("undeclared namespace prefix: " +
                               std::string(prefix));
  }
  return it->second;
}

}  // namespace xqp
