#include "query/expr.h"

namespace xqp {

Expr::~Expr() {
  // Flatten the subtree into a worklist before any child destructor runs:
  // each unique_ptr reset then frees a node whose children vector is
  // already empty, so destruction is O(depth 1) in C++ stack no matter
  // how deep the expression tree is (100k nested parens included).
  std::vector<std::unique_ptr<Expr>> worklist;
  for (auto& c : children_) {
    if (c != nullptr) worklist.push_back(std::move(c));
  }
  children_.clear();
  while (!worklist.empty()) {
    std::unique_ptr<Expr> e = std::move(worklist.back());
    worklist.pop_back();
    for (auto& c : e->children_) {
      if (c != nullptr) worklist.push_back(std::move(c));
    }
    e->children_.clear();
  }
}

std::string_view ExprKindName(ExprKind kind) {
  switch (kind) {
    case ExprKind::kLiteral: return "literal";
    case ExprKind::kVarRef: return "var";
    case ExprKind::kContextItem: return "context-item";
    case ExprKind::kSequence: return "sequence";
    case ExprKind::kRange: return "range";
    case ExprKind::kArithmetic: return "arith";
    case ExprKind::kUnary: return "unary";
    case ExprKind::kComparison: return "compare";
    case ExprKind::kLogical: return "logic";
    case ExprKind::kRoot: return "root";
    case ExprKind::kPath: return "path";
    case ExprKind::kStep: return "step";
    case ExprKind::kFilter: return "filter";
    case ExprKind::kFlwor: return "flwor";
    case ExprKind::kQuantified: return "quantified";
    case ExprKind::kIf: return "if";
    case ExprKind::kTypeswitch: return "typeswitch";
    case ExprKind::kInstanceOf: return "instance-of";
    case ExprKind::kTreatAs: return "treat-as";
    case ExprKind::kCastAs: return "cast-as";
    case ExprKind::kCastableAs: return "castable-as";
    case ExprKind::kUnion: return "union";
    case ExprKind::kIntersectExcept: return "intersect-except";
    case ExprKind::kFunctionCall: return "call";
    case ExprKind::kElementCtor: return "element-ctor";
    case ExprKind::kAttributeCtor: return "attribute-ctor";
    case ExprKind::kTextCtor: return "text-ctor";
    case ExprKind::kCommentCtor: return "comment-ctor";
    case ExprKind::kPiCtor: return "pi-ctor";
    case ExprKind::kDocumentCtor: return "document-ctor";
    case ExprKind::kTryCatch: return "try-catch";
  }
  return "?";
}

std::string_view AxisName(Axis axis) {
  switch (axis) {
    case Axis::kChild: return "child";
    case Axis::kDescendant: return "descendant";
    case Axis::kDescendantOrSelf: return "descendant-or-self";
    case Axis::kSelf: return "self";
    case Axis::kAttribute: return "attribute";
    case Axis::kParent: return "parent";
    case Axis::kAncestor: return "ancestor";
    case Axis::kAncestorOrSelf: return "ancestor-or-self";
    case Axis::kFollowingSibling: return "following-sibling";
    case Axis::kPrecedingSibling: return "preceding-sibling";
    case Axis::kFollowing: return "following";
    case Axis::kPreceding: return "preceding";
  }
  return "?";
}

bool IsReverseAxis(Axis axis) {
  switch (axis) {
    case Axis::kParent:
    case Axis::kAncestor:
    case Axis::kAncestorOrSelf:
    case Axis::kPrecedingSibling:
    case Axis::kPreceding:
      return true;
    default:
      return false;
  }
}

bool NodeTest::Matches(const Document& doc, NodeIndex i,
                       bool principal_attribute) const {
  const NodeRecord& n = doc.node(i);
  switch (kind) {
    case Kind::kAnyKind:
      return true;
    case Kind::kText:
      return n.kind == NodeKind::kText;
    case Kind::kComment:
      return n.kind == NodeKind::kComment;
    case Kind::kDocument:
      return n.kind == NodeKind::kDocument;
    case Kind::kPi:
      if (n.kind != NodeKind::kProcessingInstruction) return false;
      return pi_target.empty() || doc.name(i).local == pi_target;
    case Kind::kElement:
      if (n.kind != NodeKind::kElement) return false;
      break;
    case Kind::kAttribute:
      if (n.kind != NodeKind::kAttribute) return false;
      break;
    case Kind::kName: {
      // The principal node kind depends on the axis.
      NodeKind want = principal_attribute ? NodeKind::kAttribute
                                          : NodeKind::kElement;
      if (n.kind != want) return false;
      break;
    }
  }
  // Name check (for kName / kElement / kAttribute with a name).
  if (kind == Kind::kElement || kind == Kind::kAttribute) {
    if (wildcard_local && wildcard_uri) return true;
  }
  if (!wildcard_local || !wildcard_uri) {
    const QName& qn = doc.name(i);
    if (!wildcard_local && qn.local != local) return false;
    if (!wildcard_uri && qn.uri != uri) return false;
  }
  return true;
}

std::string NodeTest::ToString() const {
  switch (kind) {
    case Kind::kAnyKind:
      return "node()";
    case Kind::kText:
      return "text()";
    case Kind::kComment:
      return "comment()";
    case Kind::kPi:
      return pi_target.empty()
                 ? "processing-instruction()"
                 : "processing-instruction(" + pi_target + ")";
    case Kind::kDocument:
      return "document-node()";
    case Kind::kElement:
      return wildcard_local ? "element()" : "element(" + local + ")";
    case Kind::kAttribute:
      return wildcard_local ? "attribute()" : "attribute(" + local + ")";
    case Kind::kName: {
      std::string s;
      if (wildcard_uri && wildcard_local) return "*";
      if (wildcard_uri) return "*:" + local;
      if (!uri.empty()) s = "{" + uri + "}";
      if (wildcard_local) return s + "*";
      return s + local;
    }
  }
  return "?";
}

void Expr::CloneChildrenInto(Expr* dst) const {
  for (const auto& c : children_) dst->AddChild(c->Clone());
}

std::string Expr::ChildrenToString() const {
  std::string s;
  for (const auto& c : children_) {
    s += " ";
    s += c->ToString();
  }
  return s;
}

std::string Expr::ToString() const {
  return "(" + std::string(ExprKindName(kind_)) + ChildrenToString() + ")";
}

std::string_view ArithOpName(ArithOp op) {
  switch (op) {
    case ArithOp::kAdd: return "+";
    case ArithOp::kSub: return "-";
    case ArithOp::kMul: return "*";
    case ArithOp::kDiv: return "div";
    case ArithOp::kIDiv: return "idiv";
    case ArithOp::kMod: return "mod";
  }
  return "?";
}

std::string_view CompOpName(CompOp op) {
  switch (op) {
    case CompOp::kValueEq: return "eq";
    case CompOp::kValueNe: return "ne";
    case CompOp::kValueLt: return "lt";
    case CompOp::kValueLe: return "le";
    case CompOp::kValueGt: return "gt";
    case CompOp::kValueGe: return "ge";
    case CompOp::kGenEq: return "=";
    case CompOp::kGenNe: return "!=";
    case CompOp::kGenLt: return "<";
    case CompOp::kGenLe: return "<=";
    case CompOp::kGenGt: return ">";
    case CompOp::kGenGe: return ">=";
    case CompOp::kIs: return "is";
    case CompOp::kIsNot: return "isnot";
    case CompOp::kBefore: return "<<";
    case CompOp::kAfter: return ">>";
  }
  return "?";
}

bool IsGeneralComp(CompOp op) {
  return op >= CompOp::kGenEq && op <= CompOp::kGenGe;
}

bool IsValueComp(CompOp op) {
  return op >= CompOp::kValueEq && op <= CompOp::kValueGe;
}

// --- Clone / ToString implementations ---

std::unique_ptr<Expr> LiteralExpr::Clone() const {
  auto e = std::make_unique<LiteralExpr>(value);
  return e;
}

std::string LiteralExpr::ToString() const {
  if (value.type() == XsType::kString || value.type() == XsType::kUntypedAtomic) {
    return "\"" + value.Lexical() + "\"";
  }
  return value.Lexical();
}

std::unique_ptr<Expr> VarRefExpr::Clone() const {
  auto e = std::make_unique<VarRefExpr>(name);
  e->slot = slot;
  e->is_global = is_global;
  return e;
}

std::string VarRefExpr::ToString() const { return "$" + name.Lexical(); }

std::unique_ptr<Expr> ContextItemExpr::Clone() const {
  return std::make_unique<ContextItemExpr>();
}

std::unique_ptr<Expr> RootExpr::Clone() const {
  return std::make_unique<RootExpr>();
}

std::unique_ptr<Expr> StepExpr::Clone() const {
  return std::make_unique<StepExpr>(axis, test);
}

std::string StepExpr::ToString() const {
  return std::string(AxisName(axis)) + "::" + test.ToString();
}

std::unique_ptr<Expr> SequenceExpr::Clone() const {
  auto e = std::make_unique<SequenceExpr>();
  CloneChildrenInto(e.get());
  return e;
}

std::string SequenceExpr::ToString() const {
  return "(seq" + ChildrenToString() + ")";
}

std::unique_ptr<Expr> RangeExpr::Clone() const {
  return std::make_unique<RangeExpr>(child(0)->Clone(), child(1)->Clone());
}

std::string RangeExpr::ToString() const {
  return "(to" + ChildrenToString() + ")";
}

std::unique_ptr<Expr> ArithmeticExpr::Clone() const {
  return std::make_unique<ArithmeticExpr>(op, child(0)->Clone(),
                                          child(1)->Clone());
}

std::string ArithmeticExpr::ToString() const {
  return "(" + std::string(ArithOpName(op)) + ChildrenToString() + ")";
}

std::unique_ptr<Expr> UnaryExpr::Clone() const {
  return std::make_unique<UnaryExpr>(negate, child(0)->Clone());
}

std::string UnaryExpr::ToString() const {
  return std::string(negate ? "(neg" : "(pos") + ChildrenToString() + ")";
}

std::unique_ptr<Expr> ComparisonExpr::Clone() const {
  return std::make_unique<ComparisonExpr>(op, child(0)->Clone(),
                                          child(1)->Clone());
}

std::string ComparisonExpr::ToString() const {
  return "(" + std::string(CompOpName(op)) + ChildrenToString() + ")";
}

std::unique_ptr<Expr> LogicalExpr::Clone() const {
  return std::make_unique<LogicalExpr>(is_and, child(0)->Clone(),
                                       child(1)->Clone());
}

std::string LogicalExpr::ToString() const {
  return std::string(is_and ? "(and" : "(or") + ChildrenToString() + ")";
}

const char* AccessPathName(AccessPath p) {
  switch (p) {
    case AccessPath::kAuto: return "auto";
    case AccessPath::kNav: return "nav";
    case AccessPath::kSJoin: return "sjoin";
    case AccessPath::kTwig: return "twig";
    case AccessPath::kIndex: return "index";
  }
  return "auto";
}

std::optional<AccessPath> ParseAccessPath(std::string_view name) {
  if (name == "auto") return AccessPath::kAuto;
  if (name == "nav") return AccessPath::kNav;
  if (name == "sjoin") return AccessPath::kSJoin;
  if (name == "twig") return AccessPath::kTwig;
  if (name == "index") return AccessPath::kIndex;
  return std::nullopt;
}

std::unique_ptr<Expr> PathExpr::Clone() const {
  auto e = std::make_unique<PathExpr>(child(0)->Clone(), child(1)->Clone());
  e->needs_sort = needs_sort;
  e->needs_dedup = needs_dedup;
  e->index_candidate = index_candidate;
  e->access_path = access_path;
  e->access_est = access_est;
  return e;
}

std::string PathExpr::ToString() const {
  std::string tag = "(path";
  if (needs_sort) tag += "/sort";
  if (needs_dedup) tag += "/dedup";
  return tag + ChildrenToString() + ")";
}

std::unique_ptr<Expr> FilterExpr::Clone() const {
  auto e = std::make_unique<FilterExpr>(child(0)->Clone());
  for (size_t i = 1; i < NumChildren(); ++i) e->AddChild(child(i)->Clone());
  return e;
}

std::string FilterExpr::ToString() const {
  return "(filter" + ChildrenToString() + ")";
}

std::unique_ptr<Expr> FlworExpr::Clone() const {
  auto e = std::make_unique<FlworExpr>();
  e->clauses = clauses;
  CloneChildrenInto(e.get());
  return e;
}

std::string FlworExpr::ToString() const {
  std::string s = "(flwor";
  for (size_t i = 0; i < clauses.size(); ++i) {
    const Clause& c = clauses[i];
    switch (c.type) {
      case Clause::Type::kFor:
        s += " for $" + c.var.Lexical();
        if (c.has_pos_var()) s += " at $" + c.pos_var.Lexical();
        s += " in " + child(i)->ToString();
        break;
      case Clause::Type::kLet:
        s += " let $" + c.var.Lexical() + " := " + child(i)->ToString();
        break;
      case Clause::Type::kWhere:
        s += " where " + child(i)->ToString();
        break;
      case Clause::Type::kOrderSpec:
        s += " order-by " + child(i)->ToString() +
             (c.descending ? " descending" : "");
        break;
    }
  }
  s += " return " + return_expr()->ToString() + ")";
  return s;
}

std::unique_ptr<Expr> QuantifiedExpr::Clone() const {
  auto e = std::make_unique<QuantifiedExpr>(is_every);
  e->bindings = bindings;
  CloneChildrenInto(e.get());
  return e;
}

std::string QuantifiedExpr::ToString() const {
  std::string s = is_every ? "(every" : "(some";
  for (size_t i = 0; i < bindings.size(); ++i) {
    s += " $" + bindings[i].var.Lexical() + " in " + child(i)->ToString();
  }
  s += " satisfies " + child(NumChildren() - 1)->ToString() + ")";
  return s;
}

std::unique_ptr<Expr> IfExpr::Clone() const {
  return std::make_unique<IfExpr>(child(0)->Clone(), child(1)->Clone(),
                                  child(2)->Clone());
}

std::string IfExpr::ToString() const {
  return "(if" + ChildrenToString() + ")";
}

std::unique_ptr<Expr> TypeswitchExpr::Clone() const {
  auto e = std::make_unique<TypeswitchExpr>();
  e->cases = cases;
  e->default_var = default_var;
  e->default_var_slot = default_var_slot;
  CloneChildrenInto(e.get());
  return e;
}

std::string TypeswitchExpr::ToString() const {
  std::string s = "(typeswitch " + child(0)->ToString();
  for (size_t i = 0; i < cases.size(); ++i) {
    s += " case " + cases[i].type.ToString() + " return " +
         child(i + 1)->ToString();
  }
  s += " default " + child(NumChildren() - 1)->ToString() + ")";
  return s;
}

std::unique_ptr<Expr> InstanceOfExpr::Clone() const {
  return std::make_unique<InstanceOfExpr>(child(0)->Clone(), type);
}

std::string InstanceOfExpr::ToString() const {
  return "(instance-of " + child(0)->ToString() + " " + type.ToString() + ")";
}

std::unique_ptr<Expr> TreatExpr::Clone() const {
  return std::make_unique<TreatExpr>(child(0)->Clone(), type);
}

std::string TreatExpr::ToString() const {
  return "(treat-as " + child(0)->ToString() + " " + type.ToString() + ")";
}

std::unique_ptr<Expr> CastExpr::Clone() const {
  return std::make_unique<CastExpr>(child(0)->Clone(), target, optional);
}

std::string CastExpr::ToString() const {
  return "(cast-as " + child(0)->ToString() + " " +
         std::string(XsTypeName(target)) + (optional ? "?" : "") + ")";
}

std::unique_ptr<Expr> CastableExpr::Clone() const {
  return std::make_unique<CastableExpr>(child(0)->Clone(), target, optional);
}

std::string CastableExpr::ToString() const {
  return "(castable-as " + child(0)->ToString() + " " +
         std::string(XsTypeName(target)) + (optional ? "?" : "") + ")";
}

std::unique_ptr<Expr> UnionExpr::Clone() const {
  return std::make_unique<UnionExpr>(child(0)->Clone(), child(1)->Clone());
}

std::string UnionExpr::ToString() const {
  return "(union" + ChildrenToString() + ")";
}

std::unique_ptr<Expr> IntersectExceptExpr::Clone() const {
  return std::make_unique<IntersectExceptExpr>(is_except, child(0)->Clone(),
                                               child(1)->Clone());
}

std::string IntersectExceptExpr::ToString() const {
  return std::string(is_except ? "(except" : "(intersect") +
         ChildrenToString() + ")";
}

std::unique_ptr<Expr> FunctionCallExpr::Clone() const {
  auto e = std::make_unique<FunctionCallExpr>(name);
  e->builtin = builtin;
  e->user_index = user_index;
  CloneChildrenInto(e.get());
  return e;
}

std::string FunctionCallExpr::ToString() const {
  return "(" + name.Lexical() + ChildrenToString() + ")";
}

std::unique_ptr<Expr> ElementCtorExpr::Clone() const {
  auto e = std::make_unique<ElementCtorExpr>();
  e->computed_name = computed_name;
  e->name = name;
  e->ns_decls = ns_decls;
  CloneChildrenInto(e.get());
  return e;
}

std::string ElementCtorExpr::ToString() const {
  std::string s = "(element ";
  s += computed_name ? "<computed>" : name.Lexical();
  s += ChildrenToString() + ")";
  return s;
}

std::unique_ptr<Expr> AttributeCtorExpr::Clone() const {
  auto e = std::make_unique<AttributeCtorExpr>();
  e->computed_name = computed_name;
  e->name = name;
  CloneChildrenInto(e.get());
  return e;
}

std::string AttributeCtorExpr::ToString() const {
  std::string s = "(attribute ";
  s += computed_name ? "<computed>" : name.Lexical();
  s += ChildrenToString() + ")";
  return s;
}

std::unique_ptr<Expr> TextCtorExpr::Clone() const {
  return std::make_unique<TextCtorExpr>(child(0)->Clone());
}

std::string TextCtorExpr::ToString() const {
  return "(text" + ChildrenToString() + ")";
}

std::unique_ptr<Expr> CommentCtorExpr::Clone() const {
  return std::make_unique<CommentCtorExpr>(child(0)->Clone());
}

std::string CommentCtorExpr::ToString() const {
  return "(comment-ctor" + ChildrenToString() + ")";
}

std::unique_ptr<Expr> PiCtorExpr::Clone() const {
  auto e = std::make_unique<PiCtorExpr>();
  e->target = target;
  CloneChildrenInto(e.get());
  return e;
}

std::string PiCtorExpr::ToString() const {
  return "(pi " + target + ChildrenToString() + ")";
}

std::unique_ptr<Expr> TryCatchExpr::Clone() const {
  return std::make_unique<TryCatchExpr>(child(0)->Clone(), child(1)->Clone());
}

std::string TryCatchExpr::ToString() const {
  return "(try" + ChildrenToString() + ")";
}

std::unique_ptr<Expr> DocumentCtorExpr::Clone() const {
  return std::make_unique<DocumentCtorExpr>(child(0)->Clone());
}

std::string DocumentCtorExpr::ToString() const {
  return "(document" + ChildrenToString() + ")";
}

}  // namespace xqp
