#ifndef XQP_QUERY_NORMALIZE_H_
#define XQP_QUERY_NORMALIZE_H_

#include "base/status.h"
#include "query/static_context.h"

namespace xqp {

/// The "SQ4 resolve names / SQ5 normalize" compilation step:
///  - resolves function calls (xs:T(...) becomes cast-as, fn builtins get
///    registry ids, user functions get indices; unknown calls are static
///    errors),
///  - resolves variable references to frame slots (detecting undefined
///    variables), assigning frame sizes to the main body and each function,
///  - marks recursive functions (they are never inlined).
/// Runs in place on the parsed module; must be called exactly once before
/// optimization or execution.
Status NormalizeModule(ParsedModule* module);

}  // namespace xqp

#endif  // XQP_QUERY_NORMALIZE_H_
