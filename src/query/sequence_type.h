#ifndef XQP_QUERY_SEQUENCE_TYPE_H_
#define XQP_QUERY_SEQUENCE_TYPE_H_

#include <string>

#include "xml/atomic_value.h"
#include "xml/document.h"
#include "xml/qname.h"

namespace xqp {

/// Occurrence indicator of a sequence type.
enum class Occurrence : uint8_t {
  kOne,       // T
  kOptional,  // T?
  kStar,      // T*
  kPlus,      // T+
};

/// Item-type part of a sequence type: kind tests and atomic types, as used
/// by "instance of", "cast as", typeswitch and function signatures.
struct ItemTypeTest {
  enum class Kind : uint8_t {
    kItem,       // item()
    kNode,       // node()
    kElement,    // element() / element(name)
    kAttribute,  // attribute() / attribute(name)
    kText,
    kComment,
    kPi,
    kDocument,
    kAtomic,  // a named atomic type
  };

  Kind kind = Kind::kItem;
  XsType atomic = XsType::kUntypedAtomic;  // When kind == kAtomic.
  bool wildcard_name = true;               // element(*) / attribute(*).
  QName name;                              // When !wildcard_name.

  std::string ToString() const;
};

/// A full sequence type: item type + occurrence, or empty-sequence().
struct SequenceType {
  bool empty_sequence = false;  // empty-sequence().
  ItemTypeTest item;
  Occurrence occurrence = Occurrence::kOne;

  static SequenceType AnyItems() {
    SequenceType t;
    t.item.kind = ItemTypeTest::Kind::kItem;
    t.occurrence = Occurrence::kStar;
    return t;
  }

  std::string ToString() const;
};

}  // namespace xqp

#endif  // XQP_QUERY_SEQUENCE_TYPE_H_
