#ifndef XQP_EXEC_PROFILE_H_
#define XQP_EXEC_PROFILE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <unordered_map>

#include "query/expr.h"

namespace xqp {

/// Runtime counters for one physical operator (one expression node). On the
/// lazy engine, next_calls counts Next() pulls and items the true pulls; on
/// the eager interpreter, next_calls counts Eval() invocations and items the
/// summed result cardinalities. wall_ns is inclusive of children.
struct OpStats {
  uint64_t next_calls = 0;
  uint64_t items = 0;
  uint64_t wall_ns = 0;
  uint64_t resets = 0;
};

/// Per-operator statistics for one query execution, keyed by expression
/// node. Owned by ProfileReport; attached to a DynamicContext as a raw
/// pointer for the duration of a profiled run. Not thread-safe: a profiled
/// execution is single-threaded at operator granularity (parallel kernels
/// report through the global metrics registry instead).
class QueryProfile {
 public:
  /// Find-or-create; stable until the profile is destroyed.
  OpStats* StatsFor(const Expr* e) { return &ops_[e]; }

  const OpStats* Find(const Expr* e) const {
    auto it = ops_.find(e);
    return it == ops_.end() ? nullptr : &it->second;
  }

  bool empty() const { return ops_.empty(); }
  size_t size() const { return ops_.size(); }

 private:
  std::unordered_map<const Expr*, OpStats> ops_;
};

/// One-line deterministic operator name for plan rendering, e.g.
/// "path [sort dedup]", "step child::item", "call fn:count".
std::string OperatorLabel(const Expr& e);

/// Deterministic indented operator tree with no runtime numbers (EXPLAIN).
/// Stable across runs for a given compiled query; tests golden-match it.
std::string RenderExplainTree(const Expr& root);

/// Per-node suffix hook for EXPLAIN: the returned string (may be empty) is
/// appended verbatim after the operator label. Used by the bytecode backend
/// to mark compiled subtrees ("[vm]") and bailout thunks.
using ExplainAnnotator = std::function<std::string(const Expr&)>;

/// RenderExplainTree with a per-node annotation suffix.
std::string RenderExplainTree(const Expr& root,
                              const ExplainAnnotator& annotate);

/// The same tree annotated with per-operator stats columns (PROFILE).
std::string RenderProfileText(const Expr& root, const QueryProfile& profile);

/// The plan as a JSON object: {"op","kind","next_calls","items","wall_ns",
/// "resets","children":[...]}. Operators the run never touched report zeros.
std::string RenderProfileJson(const Expr& root, const QueryProfile& profile);

/// Minimal JSON string escaping (quotes, backslash, control characters).
void AppendJsonEscaped(std::string_view s, std::string* out);

}  // namespace xqp

#endif  // XQP_EXEC_PROFILE_H_
