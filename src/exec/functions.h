#ifndef XQP_EXEC_FUNCTIONS_H_
#define XQP_EXEC_FUNCTIONS_H_

#include <cstdint>
#include <string_view>

namespace xqp {

/// Builtin function identifiers (the F&O subset of the paper's "built-in
/// function sampler" plus the functions the XMark queries need).
enum class Builtin : uint8_t {
  kDoc,            // fn:doc / fn:document (paper-era alias)
  kCollection,
  kRoot,
  kCount,
  kSum,
  kAvg,
  kMin,
  kMax,
  kEmpty,
  kExists,
  kNot,
  kTrue,
  kFalse,
  kBoolean,
  kString,
  kData,
  kNumber,
  kStringLength,
  kConcat,
  kContains,
  kStartsWith,
  kEndsWith,
  kSubstring,
  kSubstringBefore,
  kSubstringAfter,
  kNormalizeSpace,
  kUpperCase,
  kLowerCase,
  kTranslate,
  kStringJoin,
  kPosition,
  kLast,
  kDistinctValues,
  kDistinctNodes,  // Paper's xf:distinct-nodes.
  kReverse,
  kSubsequence,
  kIndexOf,
  kInsertBefore,
  kRemove,
  kZeroOrOne,
  kOneOrMore,
  kExactlyOne,
  kDeepEqual,
  kName,
  kLocalName,
  kNamespaceUri,
  kNodeName,
  kNodeKind,
  kFloor,
  kCeiling,
  kRound,
  kAbs,
  kError,
  kTrace,
  kHead,
  kTail,
};

struct BuiltinDesc {
  Builtin id;
  const char* local;  // Local name within the fn namespace.
  int min_args;
  int max_args;  // -1 = unbounded (fn:concat).
};

/// Looks up a builtin by namespace URI + local name + arity. Returns nullptr
/// when no such builtin exists (or the arity does not fit). The empty URI is
/// accepted as an alias for the fn namespace.
const BuiltinDesc* LookupBuiltin(std::string_view uri, std::string_view local,
                                 size_t arity);

/// Looks up by name only (any arity); used for better error messages.
const BuiltinDesc* LookupBuiltinByName(std::string_view uri,
                                       std::string_view local);

}  // namespace xqp

#endif  // XQP_EXEC_FUNCTIONS_H_
