#ifndef XQP_EXEC_ARITHMETIC_H_
#define XQP_EXEC_ARITHMETIC_H_

#include "exec/item.h"
#include "query/expr.h"

namespace xqp {

/// Evaluates an arithmetic operation on two already-atomized operand
/// sequences, applying the paper's rules: () operand => (); untyped casts
/// to xs:double; numeric promotion integer -> decimal -> double; type
/// errors otherwise.
Result<Sequence> EvalArithmetic(ArithOp op, const Sequence& lhs,
                                const Sequence& rhs);

/// Unary +/-: atomized singleton (or () => ()).
Result<Sequence> EvalUnary(bool negate, const Sequence& operand);

}  // namespace xqp

#endif  // XQP_EXEC_ARITHMETIC_H_
