#ifndef XQP_EXEC_COMPARE_H_
#define XQP_EXEC_COMPARE_H_

#include "exec/item.h"
#include "query/expr.h"

namespace xqp {

/// Three-way comparison of two atomic values for *value comparisons*:
/// untypedAtomic is treated as string (paper: <a>42</a> eq "42" is true,
/// <a>42</a> eq 42 is a type error). Returns a type error for incomparable
/// type pairs. NaN returns the special result kUnordered.
enum class CmpResult : int8_t { kLess = -1, kEqual = 0, kGreater = 1, kUnordered = 2 };
Result<CmpResult> CompareAtomicValues(const AtomicValue& a,
                                      const AtomicValue& b);

/// Evaluates a value comparison (eq/ne/lt/le/gt/ge) on two already-atomized
/// sequences. Per spec: () operand yields (); non-singletons are type
/// errors. Returns an empty sequence or a single boolean.
Result<Sequence> EvalValueComparison(CompOp op, const Sequence& lhs,
                                     const Sequence& rhs);

/// Evaluates a general comparison (=, !=, <, <=, >, >=): existential over
/// the atomized operand pairs, with the dynamic-cast rules (untyped vs
/// numeric casts to xs:double; untyped vs untyped/string compares as
/// strings; untyped vs boolean casts to boolean).
Result<bool> EvalGeneralComparison(CompOp op, const Sequence& lhs,
                                   const Sequence& rhs);

/// Node comparisons (is / isnot / << / >>). Operands must each be () or a
/// single node; () yields ().
Result<Sequence> EvalNodeComparison(CompOp op, const Sequence& lhs,
                                    const Sequence& rhs);

/// Total ordering used by "order by", fn:min and fn:max: untypedAtomic is
/// cast to double when the other side is numeric, otherwise compared as
/// string; NaN sorts before all other numbers; the empty sequence is
/// handled by the caller (empty greatest/least).
Result<CmpResult> CompareForOrdering(const AtomicValue& a,
                                     const AtomicValue& b);

}  // namespace xqp

#endif  // XQP_EXEC_COMPARE_H_
