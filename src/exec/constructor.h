#ifndef XQP_EXEC_CONSTRUCTOR_H_
#define XQP_EXEC_CONSTRUCTOR_H_

#include <vector>

#include "exec/dynamic_context.h"
#include "exec/item.h"
#include "query/expr.h"

namespace xqp {

/// Shared node-construction semantics used by both engines. Constructors
/// copy their node content into a fresh document ("XML does not allow cut
/// and paste") and join adjacent atomic values within one enclosed
/// expression with single spaces, per the XQuery constructor rules.
namespace construct {

/// Builds an element node. `content_parts` holds the evaluated value of
/// each content child in order (attribute items must come first within the
/// concatenation). Returns the new element as an item rooted in a fresh
/// document.
Result<Item> Element(const QName& name,
                     const std::vector<ElementCtorExpr::NsDecl>& ns_decls,
                     const std::vector<Sequence>& content_parts,
                     DynamicContext* ctx);

/// Builds a parentless attribute node.
Result<Item> Attribute(const QName& name,
                       const std::vector<Sequence>& value_parts,
                       DynamicContext* ctx);

/// Builds a text node; empty content yields the empty sequence.
Result<Sequence> Text(const Sequence& content, DynamicContext* ctx);

Result<Item> Comment(const Sequence& content, DynamicContext* ctx);

Result<Item> Pi(const std::string& target, const Sequence& content,
                DynamicContext* ctx);

/// Builds a document node with the given content children.
Result<Item> DocumentNode(const std::vector<Sequence>& content_parts,
                          DynamicContext* ctx);

/// Joins the atomized lexical forms of `seq` with single spaces (the
/// attribute-value and text-content rule).
std::string AtomizedString(const Sequence& seq);

}  // namespace construct

}  // namespace xqp

#endif  // XQP_EXEC_CONSTRUCTOR_H_
