#include "exec/dynamic_context.h"

namespace xqp {
// Header-only; anchors the translation unit.
}  // namespace xqp
