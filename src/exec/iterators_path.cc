#include <optional>

#include "base/metrics.h"
#include "exec/axes.h"
#include "exec/iterators.h"
#include "index/index_planner.h"
#include "opt/access_path.h"

namespace xqp {
namespace lazy_internal {

namespace {

/// Streaming axis step: nodes are produced one at a time straight off the
/// document's node table.
class StepIt : public ItemIterator {
 public:
  StepIt(const StepExpr* e, const LazyFocus* focus) : e_(e), focus_(focus) {}

  Status Reset(DynamicContext* ctx) override {
    ctx_ = ctx;
    cursor_.reset();
    started_ = false;
    return Status::OK();
  }

  Result<bool> Next(Item* out) override {
    if (!started_) {
      started_ = true;
      Item origin;
      if (focus_ != nullptr && focus_->valid) {
        origin = focus_->item;
      } else if (ctx_->initial_context != nullptr) {
        XQP_ASSIGN_OR_RETURN(const Item* item, ctx_->initial_context->Get(0));
        if (item == nullptr) {
          return Status::DynamicError("context item is not defined");
        }
        origin = *item;
      } else {
        return Status::DynamicError("context item is not defined");
      }
      if (!origin.IsNode()) {
        return Status::TypeError("axis step requires a node context item");
      }
      cursor_.emplace(origin.AsNode(), e_->axis, &e_->test);
    }
    Node node;
    if (!cursor_->Next(&node)) return false;
    *out = Item(std::move(node));
    return true;
  }

 private:
  const StepExpr* e_;
  const LazyFocus* focus_;
  DynamicContext* ctx_ = nullptr;
  std::optional<AxisCursor> cursor_;
  bool started_ = false;
};

/// Path combinator. Fully streaming when ddo was elided; a materialization
/// (blocking) point otherwise — exactly the paper's "when should we
/// materialize" list.
class PathIt : public ItemIterator {
 public:
  PathIt(const PathExpr* e) : e_(e) {}

  Status Init(const LazyFocus* outer_focus) {
    XQP_ASSIGN_OR_RETURN(lhs_, CompileIterator(e_->child(0), outer_focus));
    XQP_ASSIGN_OR_RETURN(rhs_, CompileIterator(e_->child(1), &focus_));
    rhs_uses_last_ = e_->child(1)->props.uses_last;
    blocking_ = e_->needs_sort || e_->needs_dedup;
    return Status::OK();
  }

  Status Reset(DynamicContext* ctx) override {
    ctx_ = ctx;
    if (!blocking_ && metrics::Enabled()) {
      static metrics::Counter* streaming_paths =
          metrics::MetricsRegistry::Global().counter("lazy.path.streaming");
      streaming_paths->Increment();
    }
    XQP_RETURN_NOT_OK(lhs_->Reset(ctx));
    focus_ = LazyFocus{};
    rhs_active_ = false;
    buffer_.clear();
    buffer_pos_ = 0;
    buffered_ = false;
    lhs_buffer_.clear();
    lhs_pos_ = 0;
    lhs_materialized_ = false;
    saw_node_ = saw_atomic_ = false;
    return Status::OK();
  }

  Result<bool> Next(Item* out) override {
    if (blocking_) {
      if (!buffered_) {
        XQP_RETURN_NOT_OK(FillBuffer());
        buffered_ = true;
      }
      if (buffer_pos_ >= buffer_.size()) return false;
      *out = buffer_[buffer_pos_++];
      return true;
    }
    // Streaming mode.
    while (true) {
      // One cooperative governor check per lhs context item: cancellation
      // and deadlines reach long-running paths even when no item escapes
      // to the root drain for a while.
      if (ctx_->governor != nullptr) {
        XQP_RETURN_NOT_OK(ctx_->governor->Poll());
      }
      if (rhs_active_) {
        Item item;
        XQP_ASSIGN_OR_RETURN(bool got, rhs_->Next(&item));
        if (got) {
          XQP_RETURN_NOT_OK(NoteKind(item));
          *out = std::move(item);
          return true;
        }
        rhs_active_ = false;
      }
      XQP_ASSIGN_OR_RETURN(bool advanced, AdvanceLhs());
      if (!advanced) return false;
      XQP_RETURN_NOT_OK(rhs_->Reset(ctx_));
      rhs_active_ = true;
    }
  }

 private:
  Status NoteKind(const Item& item) {
    (item.IsNode() ? saw_node_ : saw_atomic_) = true;
    if (saw_node_ && saw_atomic_) {
      return Status::TypeError("path result mixes nodes and atomic values");
    }
    return Status::OK();
  }

  /// Binds the focus to the next lhs item. Materializes the lhs first when
  /// the rhs needs last().
  Result<bool> AdvanceLhs() {
    if (rhs_uses_last_) {
      if (!lhs_materialized_) {
        XQP_ASSIGN_OR_RETURN(lhs_buffer_, Drain(lhs_.get()));
        lhs_materialized_ = true;
      }
      if (lhs_pos_ >= lhs_buffer_.size()) return false;
      focus_.valid = true;
      focus_.item = lhs_buffer_[lhs_pos_];
      focus_.position = static_cast<int64_t>(lhs_pos_ + 1);
      focus_.size = static_cast<int64_t>(lhs_buffer_.size());
      ++lhs_pos_;
      return true;
    }
    Item item;
    XQP_ASSIGN_OR_RETURN(bool got, lhs_->Next(&item));
    if (!got) return false;
    focus_.valid = true;
    focus_.item = std::move(item);
    ++focus_.position;
    focus_.size = -1;
    return true;
  }

  Status FillBuffer() {
    if (metrics::Enabled()) {
      static metrics::Counter* blocking_paths =
          metrics::MetricsRegistry::Global().counter("lazy.path.blocking");
      blocking_paths->Increment();
    }
    while (true) {
      if (ctx_->governor != nullptr) {
        XQP_RETURN_NOT_OK(ctx_->governor->Poll());
      }
      XQP_ASSIGN_OR_RETURN(bool advanced, AdvanceLhs());
      if (!advanced) break;
      XQP_RETURN_NOT_OK(rhs_->Reset(ctx_));
      Item item;
      while (true) {
        XQP_ASSIGN_OR_RETURN(bool got, rhs_->Next(&item));
        if (!got) break;
        XQP_RETURN_NOT_OK(NoteKind(item));
        // This is a blocking (materialization) point: account the buffer
        // growth so memory budgets cover non-streaming paths.
        if (ctx_->governor != nullptr) {
          XQP_RETURN_NOT_OK(ctx_->governor->ChargeBytes(sizeof(Item)));
        }
        buffer_.push_back(std::move(item));
      }
    }
    if (saw_node_) {
      if (e_->needs_sort) {
        // Large materialized path results route to the parallel sort.
        XQP_RETURN_NOT_OK(SortDocOrderDistinct(
            &buffer_, ctx_->parallel_threshold, ctx_->num_threads));
      } else if (e_->needs_dedup) {
        XQP_RETURN_NOT_OK(DedupNodesPreservingOrder(&buffer_));
      }
    }
    return Status::OK();
  }

  const PathExpr* e_;
  std::unique_ptr<ItemIterator> lhs_, rhs_;
  LazyFocus focus_;
  DynamicContext* ctx_ = nullptr;
  bool blocking_ = false;
  bool rhs_uses_last_ = false;
  bool rhs_active_ = false;
  bool buffered_ = false;
  Sequence buffer_;
  size_t buffer_pos_ = 0;
  Sequence lhs_buffer_;
  size_t lhs_pos_ = 0;
  bool lhs_materialized_ = false;
  bool saw_node_ = false;
  bool saw_atomic_ = false;
};

/// One predicate over a base stream. Chained by CompileFilter for multiple
/// predicates. Early exit for constant positional predicates is the lazy
/// engine's positional-access win (experiment E2).
class FilterIt : public ItemIterator {
 public:
  FilterIt(const Expr* pred_expr) : pred_expr_(pred_expr) {}

  Status Init(std::unique_ptr<ItemIterator> base) {
    base_ = std::move(base);
    XQP_ASSIGN_OR_RETURN(pred_, CompileIterator(pred_expr_, &focus_));
    uses_last_ = pred_expr_->props.uses_last;
    if (pred_expr_->kind() == ExprKind::kLiteral) {
      const AtomicValue& v =
          static_cast<const LiteralExpr*>(pred_expr_)->value;
      if (v.IsNumeric()) {
        constant_position_ = v.NumericAsDouble();
        has_constant_position_ = true;
      }
    }
    return Status::OK();
  }

  Status Reset(DynamicContext* ctx) override {
    ctx_ = ctx;
    XQP_RETURN_NOT_OK(base_->Reset(ctx));
    focus_ = LazyFocus{};
    base_buffer_.clear();
    base_pos_ = 0;
    materialized_ = false;
    done_ = false;
    return Status::OK();
  }

  Result<bool> Next(Item* out) override {
    if (done_) return false;
    while (true) {
      // Per-candidate poll: a selective predicate may reject unboundedly
      // many base items before this Next() returns.
      if (ctx_->governor != nullptr) {
        XQP_RETURN_NOT_OK(ctx_->governor->Poll());
      }
      Item item;
      XQP_ASSIGN_OR_RETURN(bool got, PullBase(&item));
      if (!got) return false;

      if (has_constant_position_) {
        // [k]: emit the k-th item and stop pulling the base entirely.
        if (static_cast<double>(focus_.position) == constant_position_) {
          *out = std::move(item);
          done_ = true;
          return true;
        }
        if (static_cast<double>(focus_.position) > constant_position_) {
          done_ = true;
          return false;
        }
        continue;
      }

      XQP_ASSIGN_OR_RETURN(bool keep, EvalPredicate());
      if (keep) {
        *out = std::move(item);
        return true;
      }
    }
  }

 private:
  Result<bool> PullBase(Item* out) {
    if (uses_last_) {
      if (!materialized_) {
        XQP_ASSIGN_OR_RETURN(base_buffer_, Drain(base_.get()));
        materialized_ = true;
      }
      if (base_pos_ >= base_buffer_.size()) return false;
      focus_.valid = true;
      focus_.item = base_buffer_[base_pos_];
      focus_.position = static_cast<int64_t>(base_pos_ + 1);
      focus_.size = static_cast<int64_t>(base_buffer_.size());
      ++base_pos_;
      *out = focus_.item;
      return true;
    }
    Item item;
    XQP_ASSIGN_OR_RETURN(bool got, base_->Next(&item));
    if (!got) return false;
    focus_.valid = true;
    focus_.item = item;
    ++focus_.position;
    focus_.size = -1;
    *out = std::move(item);
    return true;
  }

  /// Evaluates the predicate for the current focus item: a singleton
  /// numeric result is a position test, anything else takes its EBV.
  Result<bool> EvalPredicate() {
    XQP_RETURN_NOT_OK(pred_->Reset(ctx_));
    Item first;
    XQP_ASSIGN_OR_RETURN(bool got, pred_->Next(&first));
    if (!got) return false;
    if (first.IsNode()) return true;  // EBV of node-first sequence.
    const AtomicValue& v = first.AsAtomic();
    Item second;
    XQP_ASSIGN_OR_RETURN(bool more, pred_->Next(&second));
    if (more) {
      return Status::TypeError(
          "effective boolean value of a multi-item atomic sequence");
    }
    if (v.IsNumeric()) {
      return v.NumericAsDouble() == static_cast<double>(focus_.position);
    }
    Sequence single{first};
    return EffectiveBooleanValue(single);
  }

  const Expr* pred_expr_;
  std::unique_ptr<ItemIterator> base_, pred_;
  LazyFocus focus_;
  DynamicContext* ctx_ = nullptr;
  bool uses_last_ = false;
  bool has_constant_position_ = false;
  double constant_position_ = 0;
  Sequence base_buffer_;
  size_t base_pos_ = 0;
  bool materialized_ = false;
  bool done_ = false;
};

/// Decorator over a marked path (PathExpr::index_candidate): Reset() first
/// offers the path to the access-path selector (opt/access_path.h), which
/// costs the synopsis/value-index answer against the join strategies and
/// plain navigation — the context (and with it the provider and governor)
/// only arrives here, so the attempt cannot happen at compile time. A
/// selected answer is served from the materialized buffer; a decline (or a
/// nav decision) delegates every call to the wrapped PathIt, which was
/// compiled unconditionally.
class IndexPathIt : public ItemIterator {
 public:
  IndexPathIt(const PathExpr* e, std::unique_ptr<ItemIterator> inner)
      : e_(e), inner_(std::move(inner)) {}

  Status Reset(DynamicContext* ctx) override {
    buffer_.reset();
    pos_ = 0;
    XQP_ASSIGN_OR_RETURN(buffer_, TryExecuteAccessPath(e_, ctx));
    if (buffer_.has_value()) return Status::OK();
    return inner_->Reset(ctx);
  }

  Result<bool> Next(Item* out) override {
    if (!buffer_.has_value()) return inner_->Next(out);
    if (pos_ >= buffer_->size()) return false;
    *out = (*buffer_)[pos_++];
    return true;
  }

 private:
  const PathExpr* e_;
  std::unique_ptr<ItemIterator> inner_;
  std::optional<Sequence> buffer_;
  size_t pos_ = 0;
};

}  // namespace

Result<std::unique_ptr<ItemIterator>> CompileStep(const StepExpr* e,
                                                  const LazyFocus* focus) {
  return std::unique_ptr<ItemIterator>(std::make_unique<StepIt>(e, focus));
}

Result<std::unique_ptr<ItemIterator>> CompilePath(const PathExpr* e,
                                                  const LazyFocus* focus) {
  auto it = std::make_unique<PathIt>(e);
  XQP_RETURN_NOT_OK(it->Init(focus));
  if (e->index_candidate) {
    return std::unique_ptr<ItemIterator>(
        std::make_unique<IndexPathIt>(e, std::move(it)));
  }
  return std::unique_ptr<ItemIterator>(std::move(it));
}

Result<std::unique_ptr<ItemIterator>> CompileFilter(const FilterExpr* e,
                                                    const LazyFocus* focus) {
  XQP_ASSIGN_OR_RETURN(std::unique_ptr<ItemIterator> chain,
                       CompileIterator(e->child(0), focus));
  for (size_t p = 1; p < e->NumChildren(); ++p) {
    auto filter = std::make_unique<FilterIt>(e->child(p));
    XQP_RETURN_NOT_OK(filter->Init(std::move(chain)));
    chain = std::move(filter);
  }
  return chain;
}

}  // namespace lazy_internal
}  // namespace xqp
