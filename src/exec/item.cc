#include "exec/item.h"

#include <algorithm>
#include <unordered_set>

#include "base/limits.h"
#include "base/metrics.h"

namespace xqp {

Sequence Atomize(const Sequence& seq) {
  Sequence out;
  out.reserve(seq.size());
  for (const Item& item : seq) out.push_back(Item(item.Atomized()));
  return out;
}

Result<bool> EffectiveBooleanValue(const Sequence& seq) {
  if (seq.empty()) return false;
  if (seq[0].IsNode()) return true;  // Node-first sequences are true.
  if (seq.size() != 1) {
    return Status::TypeError(
        "effective boolean value of a multi-item atomic sequence");
  }
  const AtomicValue& v = seq[0].AsAtomic();
  switch (v.type()) {
    case XsType::kBoolean:
      return v.AsBool();
    case XsType::kString:
    case XsType::kUntypedAtomic:
    case XsType::kAnyUri:
      return !v.AsString().empty();
    case XsType::kInteger:
      return v.AsInt() != 0;
    case XsType::kDecimal:
    case XsType::kDouble: {
      double d = v.AsRawDouble();
      return !(d == 0.0 || d != d);  // false for 0 and NaN.
    }
    case XsType::kQName:
      return Status::TypeError("effective boolean value of xs:QName");
  }
  return Status::TypeError("effective boolean value: unsupported type");
}

Status SortDocOrderDistinct(Sequence* seq, size_t parallel_threshold,
                            int num_threads) {
  // ddo sorts run at materialization points over arbitrarily large
  // sequences; check the governing query before committing to the work.
  if (ResourceGovernor* governor = CurrentGovernor()) {
    XQP_RETURN_NOT_OK(governor->Poll());
  }
  for (const Item& item : *seq) {
    if (!item.IsNode()) {
      return Status::TypeError(
          "path/union result contains an atomic value; expected nodes only");
    }
  }
  auto cmp = [](const Item& a, const Item& b) {
    return Node::CompareDocOrder(a.AsNode(), b.AsNode()) < 0;
  };
  const bool go_parallel =
      parallel_threshold > 0 && seq->size() >= parallel_threshold;
  if (metrics::Enabled()) {
    static metrics::Counter* parallel_sorts =
        metrics::MetricsRegistry::Global().counter("sort.ddo.parallel");
    static metrics::Counter* serial_sorts =
        metrics::MetricsRegistry::Global().counter("sort.ddo.serial");
    static metrics::Counter* sorted_items =
        metrics::MetricsRegistry::Global().counter("sort.ddo.items");
    (go_parallel ? parallel_sorts : serial_sorts)->Increment();
    sorted_items->Add(seq->size());
  }
  if (go_parallel) {
    ParallelStableSort(seq->begin(), seq->end(), cmp, num_threads,
                       parallel_threshold);
  } else {
    std::stable_sort(seq->begin(), seq->end(), cmp);
  }
  seq->erase(std::unique(seq->begin(), seq->end(),
                         [](const Item& a, const Item& b) {
                           return a.AsNode().SameNode(b.AsNode());
                         }),
             seq->end());
  return Status::OK();
}

Status DedupNodesPreservingOrder(Sequence* seq) {
  std::unordered_set<uint64_t> seen;
  Sequence out;
  out.reserve(seq->size());
  for (Item& item : *seq) {
    if (!item.IsNode()) {
      return Status::TypeError("path result contains an atomic value");
    }
    uint64_t key = item.AsNode().doc().id() * 0x100000000ULL +
                   item.AsNode().index();
    if (seen.insert(key).second) out.push_back(std::move(item));
  }
  *seq = std::move(out);
  return Status::OK();
}

bool SequencesIdentical(const Sequence& a, const Sequence& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].IsNode() != b[i].IsNode()) return false;
    if (a[i].IsNode()) {
      if (!a[i].AsNode().SameNode(b[i].AsNode())) return false;
    } else {
      const AtomicValue& x = a[i].AsAtomic();
      const AtomicValue& y = b[i].AsAtomic();
      if (x.type() != y.type() || !x.DeepEquals(y)) return false;
    }
  }
  return true;
}

}  // namespace xqp
