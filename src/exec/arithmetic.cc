#include "exec/arithmetic.h"

#include <cmath>

namespace xqp {

namespace {

/// Numeric tower rank: integer(0) < decimal(1) < double(2).
int Rank(XsType t) {
  switch (t) {
    case XsType::kInteger:
      return 0;
    case XsType::kDecimal:
      return 1;
    default:
      return 2;
  }
}

Result<AtomicValue> ToNumeric(const AtomicValue& v) {
  if (v.IsNumeric()) return v;
  if (v.type() == XsType::kUntypedAtomic) return v.CastTo(XsType::kDouble);
  return Status::TypeError("arithmetic on non-numeric operand (" +
                           std::string(XsTypeName(v.type())) + ")");
}

}  // namespace

Result<Sequence> EvalArithmetic(ArithOp op, const Sequence& lhs,
                                const Sequence& rhs) {
  if (lhs.empty() || rhs.empty()) return Sequence{};
  if (lhs.size() != 1 || rhs.size() != 1) {
    return Status::TypeError("arithmetic requires singleton operands");
  }
  XQP_ASSIGN_OR_RETURN(AtomicValue a, ToNumeric(lhs[0].AsAtomic()));
  XQP_ASSIGN_OR_RETURN(AtomicValue b, ToNumeric(rhs[0].AsAtomic()));

  if (op == ArithOp::kIDiv) {
    double y = b.NumericAsDouble();
    if (y == 0.0) return Status::DynamicError("integer division by zero");
    double x = a.NumericAsDouble();
    if (std::isnan(x) || std::isnan(y) || std::isinf(x)) {
      return Status::DynamicError("idiv with NaN or INF operand");
    }
    return Sequence{Item(AtomicValue::Integer(
        static_cast<int64_t>(std::trunc(x / y))))};
  }

  int rank = std::max(Rank(a.type()), Rank(b.type()));
  // "div" on integers produces a decimal.
  if (op == ArithOp::kDiv && rank == 0) rank = 1;

  if (rank == 0) {
    int64_t x = a.AsInt();
    int64_t y = b.AsInt();
    switch (op) {
      case ArithOp::kAdd:
        return Sequence{Item(AtomicValue::Integer(x + y))};
      case ArithOp::kSub:
        return Sequence{Item(AtomicValue::Integer(x - y))};
      case ArithOp::kMul:
        return Sequence{Item(AtomicValue::Integer(x * y))};
      case ArithOp::kMod:
        if (y == 0) return Status::DynamicError("modulus by zero");
        return Sequence{Item(AtomicValue::Integer(x % y))};
      default:
        break;
    }
  }

  double x = a.NumericAsDouble();
  double y = b.NumericAsDouble();
  double r = 0;
  switch (op) {
    case ArithOp::kAdd:
      r = x + y;
      break;
    case ArithOp::kSub:
      r = x - y;
      break;
    case ArithOp::kMul:
      r = x * y;
      break;
    case ArithOp::kDiv:
      if (rank < 2 && y == 0.0) {
        return Status::DynamicError("decimal division by zero");
      }
      r = x / y;
      break;
    case ArithOp::kMod:
      if (rank < 2 && y == 0.0) return Status::DynamicError("modulus by zero");
      r = std::fmod(x, y);
      break;
    case ArithOp::kIDiv:
      return Status::Internal("idiv handled above");
  }
  if (rank == 1) {
    if (std::isnan(r) || std::isinf(r)) {
      return Status::DynamicError("decimal overflow");
    }
    return Sequence{Item(AtomicValue::Decimal(r))};
  }
  return Sequence{Item(AtomicValue::Double(r))};
}

Result<Sequence> EvalUnary(bool negate, const Sequence& operand) {
  if (operand.empty()) return Sequence{};
  if (operand.size() != 1) {
    return Status::TypeError("unary arithmetic requires a singleton operand");
  }
  XQP_ASSIGN_OR_RETURN(AtomicValue v, ToNumeric(operand[0].AsAtomic()));
  if (!negate) return Sequence{Item(v)};
  switch (v.type()) {
    case XsType::kInteger:
      return Sequence{Item(AtomicValue::Integer(-v.AsInt()))};
    case XsType::kDecimal:
      return Sequence{Item(AtomicValue::Decimal(-v.AsRawDouble()))};
    default:
      return Sequence{Item(AtomicValue::Double(-v.AsRawDouble()))};
  }
}

}  // namespace xqp
