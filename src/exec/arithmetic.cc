#include "exec/arithmetic.h"

#include <cmath>
#include <cstdint>

namespace xqp {

namespace {

/// Numeric tower rank: integer(0) < decimal(1) < double(2).
int Rank(XsType t) {
  switch (t) {
    case XsType::kInteger:
      return 0;
    case XsType::kDecimal:
      return 1;
    default:
      return 2;
  }
}

Result<AtomicValue> ToNumeric(const AtomicValue& v) {
  if (v.IsNumeric()) return v;
  if (v.type() == XsType::kUntypedAtomic) return v.CastTo(XsType::kDouble);
  return Status::TypeError("arithmetic on non-numeric operand (" +
                           std::string(XsTypeName(v.type())) + ")");
}

}  // namespace

Result<Sequence> EvalArithmetic(ArithOp op, const Sequence& lhs,
                                const Sequence& rhs) {
  if (lhs.empty() || rhs.empty()) return Sequence{};
  if (lhs.size() != 1 || rhs.size() != 1) {
    return Status::TypeError("arithmetic requires singleton operands");
  }
  XQP_ASSIGN_OR_RETURN(AtomicValue a, ToNumeric(lhs[0].AsAtomic()));
  XQP_ASSIGN_OR_RETURN(AtomicValue b, ToNumeric(rhs[0].AsAtomic()));

  if (op == ArithOp::kIDiv) {
    // Integer-typed operands take an exact integer path: the double route
    // below loses precision past 2^53, and INT64_MIN idiv -1 would cast a
    // non-representable double back to int64 (UB).
    if (a.type() == XsType::kInteger && b.type() == XsType::kInteger) {
      int64_t x = a.AsInt();
      int64_t y = b.AsInt();
      if (y == 0) return Status::DynamicError("integer division by zero");
      if (x == INT64_MIN && y == -1) {
        return Status::DynamicError(
            "err:FOAR0002: integer overflow in idiv");
      }
      return Sequence{Item(AtomicValue::Integer(x / y))};
    }
    double y = b.NumericAsDouble();
    if (y == 0.0) return Status::DynamicError("integer division by zero");
    double x = a.NumericAsDouble();
    if (std::isnan(x) || std::isnan(y) || std::isinf(x)) {
      return Status::DynamicError("idiv with NaN or INF operand");
    }
    double q = std::trunc(x / y);
    // Casting a value outside int64's range is UB; make it err:FOAR0002.
    if (!(q >= -9223372036854775808.0 && q < 9223372036854775808.0)) {
      return Status::DynamicError("err:FOAR0002: integer overflow in idiv");
    }
    return Sequence{Item(AtomicValue::Integer(static_cast<int64_t>(q)))};
  }

  int rank = std::max(Rank(a.type()), Rank(b.type()));
  // "div" on integers produces a decimal.
  if (op == ArithOp::kDiv && rank == 0) rank = 1;

  if (rank == 0) {
    // Checked integer arithmetic: signed overflow is UB in C++, and the
    // XQuery spec makes it a dynamic error (err:FOAR0002), not a trap.
    int64_t x = a.AsInt();
    int64_t y = b.AsInt();
    int64_t r = 0;
    switch (op) {
      case ArithOp::kAdd:
        if (__builtin_add_overflow(x, y, &r)) {
          return Status::DynamicError(
              "err:FOAR0002: integer overflow in addition");
        }
        return Sequence{Item(AtomicValue::Integer(r))};
      case ArithOp::kSub:
        if (__builtin_sub_overflow(x, y, &r)) {
          return Status::DynamicError(
              "err:FOAR0002: integer overflow in subtraction");
        }
        return Sequence{Item(AtomicValue::Integer(r))};
      case ArithOp::kMul:
        if (__builtin_mul_overflow(x, y, &r)) {
          return Status::DynamicError(
              "err:FOAR0002: integer overflow in multiplication");
        }
        return Sequence{Item(AtomicValue::Integer(r))};
      case ArithOp::kMod:
        if (y == 0) return Status::DynamicError("modulus by zero");
        // INT64_MIN % -1 traps on x86 even though the result is 0.
        if (y == -1) return Sequence{Item(AtomicValue::Integer(0))};
        return Sequence{Item(AtomicValue::Integer(x % y))};
      default:
        break;
    }
  }

  double x = a.NumericAsDouble();
  double y = b.NumericAsDouble();
  double r = 0;
  switch (op) {
    case ArithOp::kAdd:
      r = x + y;
      break;
    case ArithOp::kSub:
      r = x - y;
      break;
    case ArithOp::kMul:
      r = x * y;
      break;
    case ArithOp::kDiv:
      if (rank < 2 && y == 0.0) {
        return Status::DynamicError("decimal division by zero");
      }
      r = x / y;
      break;
    case ArithOp::kMod:
      if (rank < 2 && y == 0.0) return Status::DynamicError("modulus by zero");
      r = std::fmod(x, y);
      break;
    case ArithOp::kIDiv:
      return Status::Internal("idiv handled above");
  }
  if (rank == 1) {
    if (std::isnan(r) || std::isinf(r)) {
      return Status::DynamicError("decimal overflow");
    }
    return Sequence{Item(AtomicValue::Decimal(r))};
  }
  return Sequence{Item(AtomicValue::Double(r))};
}

Result<Sequence> EvalUnary(bool negate, const Sequence& operand) {
  if (operand.empty()) return Sequence{};
  if (operand.size() != 1) {
    return Status::TypeError("unary arithmetic requires a singleton operand");
  }
  XQP_ASSIGN_OR_RETURN(AtomicValue v, ToNumeric(operand[0].AsAtomic()));
  if (!negate) return Sequence{Item(v)};
  switch (v.type()) {
    case XsType::kInteger: {
      int64_t x = v.AsInt();
      // -INT64_MIN is not representable; negating it is UB.
      if (x == INT64_MIN) {
        return Status::DynamicError(
            "err:FOAR0002: integer overflow in unary minus");
      }
      return Sequence{Item(AtomicValue::Integer(-x))};
    }
    case XsType::kDecimal:
      return Sequence{Item(AtomicValue::Decimal(-v.AsRawDouble()))};
    default:
      return Sequence{Item(AtomicValue::Double(-v.AsRawDouble()))};
  }
}

}  // namespace xqp
