#include "exec/lazy_seq.h"

namespace xqp {

std::shared_ptr<LazySeq> LazySeq::FromVector(Sequence items) {
  auto seq = std::shared_ptr<LazySeq>(new LazySeq());
  seq->buffer_ = std::move(items);
  return seq;
}

std::shared_ptr<LazySeq> LazySeq::FromItem(Item item) {
  auto seq = std::shared_ptr<LazySeq>(new LazySeq());
  seq->buffer_.push_back(std::move(item));
  return seq;
}

std::shared_ptr<LazySeq> LazySeq::Empty() {
  return std::shared_ptr<LazySeq>(new LazySeq());
}

std::shared_ptr<LazySeq> LazySeq::FromIterator(
    std::unique_ptr<ItemIterator> source) {
  auto seq = std::shared_ptr<LazySeq>(new LazySeq());
  seq->source_ = std::move(source);
  return seq;
}

Status LazySeq::FillTo(size_t i) {
  while (source_ != nullptr && buffer_.size() <= i) {
    Item item;
    XQP_ASSIGN_OR_RETURN(bool got, source_->Next(&item));
    if (!got) {
      source_.reset();
      break;
    }
    buffer_.push_back(std::move(item));
  }
  return Status::OK();
}

Result<const Item*> LazySeq::Get(size_t i) {
  XQP_RETURN_NOT_OK(FillTo(i));
  if (i >= buffer_.size()) return static_cast<const Item*>(nullptr);
  return &buffer_[i];
}

Result<size_t> LazySeq::Size() {
  XQP_RETURN_NOT_OK(FillTo(SIZE_MAX - 1));
  return buffer_.size();
}

Result<const Sequence*> LazySeq::Materialize() {
  XQP_RETURN_NOT_OK(FillTo(SIZE_MAX - 1));
  return &buffer_;
}

}  // namespace xqp
