#include "exec/order_by.h"

#include <algorithm>
#include <utility>

#include "exec/compare.h"

namespace xqp {
namespace flwor {

Result<OrderKey> MakeOrderKey(const Sequence& raw) {
  Sequence atomized = Atomize(raw);
  if (atomized.size() > 1) {
    return Status::TypeError("order-by key must be () or a single item");
  }
  OrderKey key;
  if (atomized.empty()) return key;
  AtomicValue v = atomized[0].AsAtomic();
  if (v.type() == XsType::kUntypedAtomic) {
    v = AtomicValue::String(v.AsString());
  }
  key.present = true;
  key.value = std::move(v);
  return key;
}

Status SortTuples(std::vector<OrderedTuple>* tuples,
                  const std::vector<OrderSpecFlags>& specs) {
  Status sort_error;
  std::stable_sort(
      tuples->begin(), tuples->end(),
      [&](const OrderedTuple& a, const OrderedTuple& b) {
        for (size_t k = 0; k < specs.size(); ++k) {
          const OrderKey& ka = a.keys[k];
          const OrderKey& kb = b.keys[k];
          int c;
          if (!ka.present && !kb.present) {
            c = 0;
          } else if (!ka.present) {
            c = specs[k].empty_least ? -1 : 1;
          } else if (!kb.present) {
            c = specs[k].empty_least ? 1 : -1;
          } else {
            auto r = CompareForOrdering(ka.value, kb.value);
            if (!r.ok()) {
              if (sort_error.ok()) sort_error = r.status();
              return false;
            }
            c = r.value() == CmpResult::kUnordered
                    ? 0
                    : static_cast<int>(r.value());
          }
          if (specs[k].descending) c = -c;
          if (c != 0) return c < 0;
        }
        return false;
      });
  return sort_error;
}

}  // namespace flwor
}  // namespace xqp
