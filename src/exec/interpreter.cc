#include "exec/interpreter.h"

#include <algorithm>
#include <chrono>
#include <functional>

#include "base/fault.h"
#include "base/string_util.h"
#include "exec/profile.h"
#include "exec/arithmetic.h"
#include "exec/axes.h"
#include "exec/compare.h"
#include "exec/constructor.h"
#include "exec/order_by.h"
#include "exec/type_match.h"
#include "index/index_planner.h"
#include "opt/access_path.h"

namespace xqp {

Result<QName> ComputedName(const Sequence& name_value) {
  if (name_value.size() != 1) {
    return Status::TypeError("computed constructor name must be a single item");
  }
  AtomicValue v = name_value[0].Atomized();
  std::string s = v.AsString();
  if (v.type() == XsType::kQName && !s.empty() && s[0] == '{') {
    size_t close = s.find('}');
    if (close != std::string::npos) {
      return QName(s.substr(1, close - 1), s.substr(close + 1));
    }
  }
  std::string_view prefix, local;
  SplitQName(s, &prefix, &local);
  if (!IsNCName(local)) {
    return Status::TypeError("invalid computed name: " + s);
  }
  // No runtime prefix resolution in this engine: unprefixed names land in
  // no namespace; prefixed names keep the prefix with an empty URI.
  return QName("", std::string(prefix), std::string(local));
}

Result<Item> Interpreter::ContextItem() const {
  if (!focus_.empty()) return focus_.back().item;
  if (ctx_->initial_context != nullptr) {
    auto* self = const_cast<Interpreter*>(this);
    XQP_ASSIGN_OR_RETURN(const Item* item, self->ctx_->initial_context->Get(0));
    if (item != nullptr) return *item;
  }
  return Status::DynamicError("context item is not defined");
}

FocusInfo Interpreter::CurrentFocusInfo() const {
  FocusInfo info;
  if (!focus_.empty()) {
    info.has_focus = true;
    info.item = focus_.back().item;
    info.position = focus_.back().position;
    info.size = focus_.back().size;
  } else if (ctx_->initial_context != nullptr) {
    auto* seq = ctx_->initial_context.get();
    auto item = seq->Get(0);
    if (item.ok() && item.value() != nullptr) {
      info.has_focus = true;
      info.item = *item.value();
      info.position = 1;
      info.size = 1;
    }
  }
  return info;
}

Result<Sequence> Interpreter::Eval(const Expr* e) {
  // The eager engine's cooperative check sites: one poll per expression
  // evaluation bounds the work between checks by the cheapest leaf eval.
  if (ctx_->governor != nullptr) {
    XQP_RETURN_NOT_OK(ctx_->governor->Poll());
  }
  if (fault::Armed()) {
    XQP_RETURN_NOT_OK(fault::MaybeInject("iterators.next"));
  }
  if (ctx_->profile == nullptr) return EvalDispatch(e);
  OpStats* stats = ctx_->profile->StatsFor(e);
  const auto start = std::chrono::steady_clock::now();
  Result<Sequence> result = EvalDispatch(e);
  const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                      std::chrono::steady_clock::now() - start)
                      .count();
  stats->wall_ns += ns < 0 ? 0 : uint64_t(ns);
  ++stats->next_calls;
  if (result.ok()) stats->items += result.value().size();
  return result;
}

Result<Sequence> Interpreter::EvalDispatch(const Expr* e) {
  switch (e->kind()) {
    case ExprKind::kLiteral:
      return Sequence{Item(static_cast<const LiteralExpr*>(e)->value)};

    case ExprKind::kVarRef: {
      const auto* var = static_cast<const VarRefExpr*>(e);
      const auto& frame = var->is_global ? ctx_->globals : ctx_->slots;
      if (var->slot < 0 || var->slot >= static_cast<int>(frame.size()) ||
          frame[var->slot] == nullptr) {
        return Status::DynamicError("unbound variable: $" + var->name.Lexical());
      }
      XQP_ASSIGN_OR_RETURN(const Sequence* items,
                           frame[var->slot]->Materialize());
      return *items;
    }

    case ExprKind::kContextItem: {
      XQP_ASSIGN_OR_RETURN(Item item, ContextItem());
      return Sequence{std::move(item)};
    }

    case ExprKind::kRoot: {
      XQP_ASSIGN_OR_RETURN(Item item, ContextItem());
      if (!item.IsNode()) {
        return Status::TypeError("leading '/' requires a node context item");
      }
      return Sequence{Item(item.AsNode().Root())};
    }

    case ExprKind::kSequence: {
      Sequence out;
      for (size_t i = 0; i < e->NumChildren(); ++i) {
        XQP_ASSIGN_OR_RETURN(Sequence part, Eval(e->child(i)));
        out.insert(out.end(), std::make_move_iterator(part.begin()),
                   std::make_move_iterator(part.end()));
      }
      return out;
    }

    case ExprKind::kRange: {
      XQP_ASSIGN_OR_RETURN(Sequence lo_s, Eval(e->child(0)));
      XQP_ASSIGN_OR_RETURN(Sequence hi_s, Eval(e->child(1)));
      if (lo_s.empty() || hi_s.empty()) return Sequence{};
      if (lo_s.size() != 1 || hi_s.size() != 1) {
        return Status::TypeError("range operands must be singletons");
      }
      XQP_ASSIGN_OR_RETURN(AtomicValue lo,
                           lo_s[0].Atomized().CastTo(XsType::kInteger));
      XQP_ASSIGN_OR_RETURN(AtomicValue hi,
                           hi_s[0].Atomized().CastTo(XsType::kInteger));
      Sequence out;
      for (int64_t v = lo.AsInt(); v <= hi.AsInt(); ++v) {
        // A range literal can materialize an arbitrarily large sequence in
        // one Eval; amortized governor checks keep it cancellable and
        // budgeted.
        if (ctx_->governor != nullptr && (out.size() & 1023) == 0) {
          XQP_RETURN_NOT_OK(ctx_->governor->Poll());
          XQP_RETURN_NOT_OK(
              ctx_->governor->ChargeBytes(1024 * sizeof(Item)));
        }
        out.push_back(Item(AtomicValue::Integer(v)));
      }
      return out;
    }

    case ExprKind::kArithmetic: {
      XQP_ASSIGN_OR_RETURN(Sequence lhs, Eval(e->child(0)));
      XQP_ASSIGN_OR_RETURN(Sequence rhs, Eval(e->child(1)));
      return EvalArithmetic(static_cast<const ArithmeticExpr*>(e)->op,
                            Atomize(lhs), Atomize(rhs));
    }

    case ExprKind::kUnary: {
      XQP_ASSIGN_OR_RETURN(Sequence operand, Eval(e->child(0)));
      return EvalUnary(static_cast<const UnaryExpr*>(e)->negate,
                       Atomize(operand));
    }

    case ExprKind::kComparison: {
      const auto* cmp = static_cast<const ComparisonExpr*>(e);
      XQP_ASSIGN_OR_RETURN(Sequence lhs, Eval(e->child(0)));
      XQP_ASSIGN_OR_RETURN(Sequence rhs, Eval(e->child(1)));
      if (IsValueComp(cmp->op)) {
        return EvalValueComparison(cmp->op, Atomize(lhs), Atomize(rhs));
      }
      if (IsGeneralComp(cmp->op)) {
        XQP_ASSIGN_OR_RETURN(
            bool b, EvalGeneralComparison(cmp->op, Atomize(lhs), Atomize(rhs)));
        return Sequence{Item(AtomicValue::Boolean(b))};
      }
      return EvalNodeComparison(cmp->op, lhs, rhs);
    }

    case ExprKind::kLogical: {
      const auto* logic = static_cast<const LogicalExpr*>(e);
      XQP_ASSIGN_OR_RETURN(Sequence lhs, Eval(e->child(0)));
      XQP_ASSIGN_OR_RETURN(bool lv, EffectiveBooleanValue(lhs));
      // Short-circuit (the spec's non-determinism permits this).
      if (logic->is_and && !lv) {
        return Sequence{Item(AtomicValue::Boolean(false))};
      }
      if (!logic->is_and && lv) {
        return Sequence{Item(AtomicValue::Boolean(true))};
      }
      XQP_ASSIGN_OR_RETURN(Sequence rhs, Eval(e->child(1)));
      XQP_ASSIGN_OR_RETURN(bool rv, EffectiveBooleanValue(rhs));
      return Sequence{Item(AtomicValue::Boolean(rv))};
    }

    case ExprKind::kPath:
      return EvalPath(static_cast<const PathExpr*>(e));
    case ExprKind::kStep:
      return EvalStep(static_cast<const StepExpr*>(e));
    case ExprKind::kFilter:
      return EvalFilter(static_cast<const FilterExpr*>(e));
    case ExprKind::kFlwor:
      return EvalFlwor(static_cast<const FlworExpr*>(e));
    case ExprKind::kQuantified:
      return EvalQuantified(static_cast<const QuantifiedExpr*>(e));

    case ExprKind::kIf: {
      XQP_ASSIGN_OR_RETURN(Sequence cond, Eval(e->child(0)));
      XQP_ASSIGN_OR_RETURN(bool b, EffectiveBooleanValue(cond));
      return Eval(e->child(b ? 1 : 2));
    }

    case ExprKind::kTypeswitch:
      return EvalTypeswitch(static_cast<const TypeswitchExpr*>(e));

    case ExprKind::kInstanceOf: {
      const auto* inst = static_cast<const InstanceOfExpr*>(e);
      XQP_ASSIGN_OR_RETURN(Sequence v, Eval(e->child(0)));
      return Sequence{
          Item(AtomicValue::Boolean(MatchesSequenceType(v, inst->type)))};
    }

    case ExprKind::kTreatAs: {
      const auto* treat = static_cast<const TreatExpr*>(e);
      XQP_ASSIGN_OR_RETURN(Sequence v, Eval(e->child(0)));
      if (!MatchesSequenceType(v, treat->type)) {
        return Status::TypeError("treat as " + treat->type.ToString() +
                                 " failed");
      }
      return v;
    }

    case ExprKind::kCastAs: {
      const auto* cast = static_cast<const CastExpr*>(e);
      XQP_ASSIGN_OR_RETURN(Sequence v, Eval(e->child(0)));
      Sequence atomized = Atomize(v);
      if (atomized.empty()) {
        if (cast->optional) return Sequence{};
        return Status::TypeError("cast of empty sequence to non-optional type");
      }
      if (atomized.size() != 1) {
        return Status::TypeError("cast requires a singleton");
      }
      XQP_ASSIGN_OR_RETURN(AtomicValue out,
                           atomized[0].AsAtomic().CastTo(cast->target));
      return Sequence{Item(std::move(out))};
    }

    case ExprKind::kCastableAs: {
      const auto* cast = static_cast<const CastableExpr*>(e);
      XQP_ASSIGN_OR_RETURN(Sequence v, Eval(e->child(0)));
      Sequence atomized = Atomize(v);
      bool ok;
      if (atomized.empty()) {
        ok = cast->optional;
      } else if (atomized.size() != 1) {
        ok = false;
      } else {
        ok = atomized[0].AsAtomic().CastTo(cast->target).ok();
      }
      return Sequence{Item(AtomicValue::Boolean(ok))};
    }

    case ExprKind::kUnion: {
      XQP_ASSIGN_OR_RETURN(Sequence lhs, Eval(e->child(0)));
      XQP_ASSIGN_OR_RETURN(Sequence rhs, Eval(e->child(1)));
      lhs.insert(lhs.end(), rhs.begin(), rhs.end());
      XQP_RETURN_NOT_OK(SortDocOrderDistinct(&lhs));
      return lhs;
    }

    case ExprKind::kIntersectExcept: {
      const auto* ie = static_cast<const IntersectExceptExpr*>(e);
      XQP_ASSIGN_OR_RETURN(Sequence lhs, Eval(e->child(0)));
      XQP_ASSIGN_OR_RETURN(Sequence rhs, Eval(e->child(1)));
      XQP_RETURN_NOT_OK(SortDocOrderDistinct(&lhs));
      XQP_RETURN_NOT_OK(SortDocOrderDistinct(&rhs));
      Sequence out;
      for (const Item& item : lhs) {
        bool in_rhs = false;
        for (const Item& r : rhs) {
          if (item.AsNode().SameNode(r.AsNode())) {
            in_rhs = true;
            break;
          }
        }
        if (in_rhs != ie->is_except) out.push_back(item);
      }
      return out;
    }

    case ExprKind::kFunctionCall:
      return EvalCall(static_cast<const FunctionCallExpr*>(e));

    case ExprKind::kElementCtor:
      return EvalElementCtor(static_cast<const ElementCtorExpr*>(e));

    case ExprKind::kAttributeCtor: {
      const auto* ctor = static_cast<const AttributeCtorExpr*>(e);
      QName name = ctor->name;
      size_t start = 0;
      if (ctor->computed_name) {
        XQP_ASSIGN_OR_RETURN(Sequence name_v, Eval(e->child(0)));
        XQP_ASSIGN_OR_RETURN(name, ComputedName(name_v));
        start = 1;
      }
      std::vector<Sequence> parts;
      for (size_t i = start; i < e->NumChildren(); ++i) {
        XQP_ASSIGN_OR_RETURN(Sequence part, Eval(e->child(i)));
        parts.push_back(std::move(part));
      }
      XQP_ASSIGN_OR_RETURN(Item item, construct::Attribute(name, parts, ctx_));
      return Sequence{std::move(item)};
    }

    case ExprKind::kTextCtor: {
      XQP_ASSIGN_OR_RETURN(Sequence content, Eval(e->child(0)));
      return construct::Text(content, ctx_);
    }

    case ExprKind::kCommentCtor: {
      XQP_ASSIGN_OR_RETURN(Sequence content, Eval(e->child(0)));
      XQP_ASSIGN_OR_RETURN(Item item, construct::Comment(content, ctx_));
      return Sequence{std::move(item)};
    }

    case ExprKind::kPiCtor: {
      const auto* pi = static_cast<const PiCtorExpr*>(e);
      XQP_ASSIGN_OR_RETURN(Sequence content, Eval(e->child(0)));
      XQP_ASSIGN_OR_RETURN(Item item,
                           construct::Pi(pi->target, content, ctx_));
      return Sequence{std::move(item)};
    }

    case ExprKind::kTryCatch: {
      auto attempt = Eval(e->child(0));
      if (attempt.ok()) return attempt;
      StatusCode code = attempt.status().code();
      if (code != StatusCode::kDynamicError && code != StatusCode::kTypeError) {
        return attempt;  // Only dynamic/type errors are catchable.
      }
      return Eval(e->child(1));
    }

    case ExprKind::kDocumentCtor: {
      XQP_ASSIGN_OR_RETURN(Sequence content, Eval(e->child(0)));
      std::vector<Sequence> parts;
      parts.push_back(std::move(content));
      XQP_ASSIGN_OR_RETURN(Item item, construct::DocumentNode(parts, ctx_));
      return Sequence{std::move(item)};
    }
  }
  return Status::Internal("unhandled expression kind");
}

Result<Sequence> Interpreter::EvalPath(const PathExpr* e) {
  if (e->index_candidate) {
    XQP_ASSIGN_OR_RETURN(std::optional<Sequence> answered,
                         TryExecuteAccessPath(e, ctx_));
    if (answered.has_value()) return std::move(*answered);
  }
  XQP_ASSIGN_OR_RETURN(Sequence input, Eval(e->child(0)));
  Sequence out;
  bool saw_node = false;
  bool saw_atomic = false;
  int64_t size = static_cast<int64_t>(input.size());
  for (int64_t i = 0; i < size; ++i) {
    focus_.push_back(Focus{input[i], i + 1, size});
    auto part = Eval(e->child(1));
    focus_.pop_back();
    XQP_RETURN_NOT_OK(part.status());
    for (Item& item : part.value()) {
      (item.IsNode() ? saw_node : saw_atomic) = true;
      out.push_back(std::move(item));
    }
  }
  if (saw_node && saw_atomic) {
    return Status::TypeError(
        "path result mixes nodes and atomic values");
  }
  if (saw_node) {
    if (e->needs_sort) {
      XQP_RETURN_NOT_OK(SortDocOrderDistinct(&out, ctx_->parallel_threshold,
                                             ctx_->num_threads));
    } else if (e->needs_dedup) {
      XQP_RETURN_NOT_OK(DedupNodesPreservingOrder(&out));
    }
  }
  return out;
}

Result<Sequence> Interpreter::EvalStep(const StepExpr* e) {
  XQP_ASSIGN_OR_RETURN(Item ctx_item, ContextItem());
  if (!ctx_item.IsNode()) {
    return Status::TypeError("axis step requires a node context item");
  }
  Sequence out;
  CollectAxis(ctx_item.AsNode(), e->axis, e->test, &out);
  return out;
}

Result<Sequence> Interpreter::EvalFilter(const FilterExpr* e) {
  XQP_ASSIGN_OR_RETURN(Sequence current, Eval(e->child(0)));
  for (size_t p = 1; p < e->NumChildren(); ++p) {
    const Expr* pred = e->child(p);
    Sequence next;
    int64_t size = static_cast<int64_t>(current.size());
    for (int64_t i = 0; i < size; ++i) {
      focus_.push_back(Focus{current[i], i + 1, size});
      auto value = Eval(pred);
      focus_.pop_back();
      XQP_RETURN_NOT_OK(value.status());
      const Sequence& v = value.value();
      bool keep;
      if (v.size() == 1 && v[0].IsAtomic() && v[0].AsAtomic().IsNumeric()) {
        keep = v[0].AsAtomic().NumericAsDouble() == static_cast<double>(i + 1);
      } else {
        XQP_ASSIGN_OR_RETURN(keep, EffectiveBooleanValue(v));
      }
      if (keep) next.push_back(current[i]);
    }
    current = std::move(next);
  }
  return current;
}

Result<Sequence> Interpreter::EvalFlwor(const FlworExpr* e) {
  using Tuple = flwor::OrderedTuple;
  std::vector<Tuple> tuples;
  bool has_order = false;
  for (const auto& c : e->clauses) {
    if (c.type == FlworExpr::Clause::Type::kOrderSpec) has_order = true;
  }
  Sequence out;

  // Recursive tuple-stream evaluation over clauses.
  std::function<Status(size_t, Tuple*)> run = [&](size_t ci,
                                                  Tuple* tuple) -> Status {
    if (ci == e->clauses.size()) {
      XQP_ASSIGN_OR_RETURN(Sequence result, Eval(e->return_expr()));
      if (has_order) {
        Tuple done = *tuple;
        done.result = std::move(result);
        tuples.push_back(std::move(done));
      } else {
        out.insert(out.end(), std::make_move_iterator(result.begin()),
                   std::make_move_iterator(result.end()));
      }
      return Status::OK();
    }
    const FlworExpr::Clause& c = e->clauses[ci];
    switch (c.type) {
      case FlworExpr::Clause::Type::kFor: {
        XQP_ASSIGN_OR_RETURN(Sequence domain, Eval(e->child(ci)));
        for (size_t i = 0; i < domain.size(); ++i) {
          ctx_->slots[c.var_slot] = LazySeq::FromItem(domain[i]);
          if (c.pos_slot >= 0) {
            ctx_->slots[c.pos_slot] = LazySeq::FromItem(
                Item(AtomicValue::Integer(static_cast<int64_t>(i + 1))));
          }
          XQP_RETURN_NOT_OK(run(ci + 1, tuple));
        }
        return Status::OK();
      }
      case FlworExpr::Clause::Type::kLet: {
        XQP_ASSIGN_OR_RETURN(Sequence value, Eval(e->child(ci)));
        ctx_->slots[c.var_slot] = LazySeq::FromVector(std::move(value));
        return run(ci + 1, tuple);
      }
      case FlworExpr::Clause::Type::kWhere: {
        XQP_ASSIGN_OR_RETURN(Sequence cond, Eval(e->child(ci)));
        XQP_ASSIGN_OR_RETURN(bool b, EffectiveBooleanValue(cond));
        if (!b) return Status::OK();
        return run(ci + 1, tuple);
      }
      case FlworExpr::Clause::Type::kOrderSpec: {
        XQP_ASSIGN_OR_RETURN(Sequence key, Eval(e->child(ci)));
        XQP_ASSIGN_OR_RETURN(flwor::OrderKey cell, flwor::MakeOrderKey(key));
        tuple->keys.push_back(std::move(cell));
        Status st = run(ci + 1, tuple);
        tuple->keys.pop_back();
        return st;
      }
    }
    return Status::Internal("unknown clause");
  };

  Tuple scratch;
  XQP_RETURN_NOT_OK(run(0, &scratch));

  if (!has_order) return out;

  // Sort tuples by their order keys (shared with the VM's kSortTuples).
  std::vector<flwor::OrderSpecFlags> specs;
  for (const auto& c : e->clauses) {
    if (c.type == FlworExpr::Clause::Type::kOrderSpec) {
      specs.push_back({c.descending, c.empty_least});
    }
  }
  XQP_RETURN_NOT_OK(flwor::SortTuples(&tuples, specs));
  for (Tuple& t : tuples) {
    out.insert(out.end(), std::make_move_iterator(t.result.begin()),
               std::make_move_iterator(t.result.end()));
  }
  return out;
}

Result<Sequence> Interpreter::EvalQuantified(const QuantifiedExpr* e) {
  // Nested loops with early exit (lazy evaluation of quantifiers).
  std::function<Result<bool>(size_t)> run = [&](size_t bi) -> Result<bool> {
    if (bi == e->bindings.size()) {
      XQP_ASSIGN_OR_RETURN(Sequence sat, Eval(e->child(e->NumChildren() - 1)));
      return EffectiveBooleanValue(sat);
    }
    XQP_ASSIGN_OR_RETURN(Sequence domain, Eval(e->child(bi)));
    for (const Item& item : domain) {
      ctx_->slots[e->bindings[bi].var_slot] = LazySeq::FromItem(item);
      XQP_ASSIGN_OR_RETURN(bool b, run(bi + 1));
      if (b != e->is_every) return b;  // some: true short-circuits; every: false.
    }
    return e->is_every;
  };
  XQP_ASSIGN_OR_RETURN(bool result, run(0));
  return Sequence{Item(AtomicValue::Boolean(result))};
}

Result<Sequence> Interpreter::EvalTypeswitch(const TypeswitchExpr* e) {
  XQP_ASSIGN_OR_RETURN(Sequence operand, Eval(e->child(0)));
  for (size_t i = 0; i < e->cases.size(); ++i) {
    const auto& c = e->cases[i];
    if (MatchesSequenceType(operand, c.type)) {
      if (c.var_slot >= 0) {
        ctx_->slots[c.var_slot] = LazySeq::FromVector(operand);
      }
      return Eval(e->child(i + 1));
    }
  }
  if (e->default_var_slot >= 0) {
    ctx_->slots[e->default_var_slot] = LazySeq::FromVector(operand);
  }
  return Eval(e->child(e->NumChildren() - 1));
}

Result<Sequence> Interpreter::EvalCall(const FunctionCallExpr* e) {
  std::vector<Sequence> args;
  args.reserve(e->NumChildren());
  for (size_t i = 0; i < e->NumChildren(); ++i) {
    XQP_ASSIGN_OR_RETURN(Sequence arg, Eval(e->child(i)));
    args.push_back(std::move(arg));
  }
  if (e->user_index >= 0) {
    const UserFunction& fn = ctx_->module->functions[e->user_index];
    if (fn.body == nullptr) {
      return Status::DynamicError("external function has no implementation: " +
                                  fn.name.Lexical());
    }
    if (ctx_->call_depth >= DynamicContext::kMaxCallDepth) {
      return Status::DynamicError("maximum recursion depth exceeded in " +
                                  fn.name.Lexical());
    }
    std::vector<LazySeqPtr> frame(fn.num_slots);
    for (size_t i = 0; i < args.size(); ++i) {
      if (!MatchesSequenceType(args[i], fn.param_types[i])) {
        return Status::TypeError(
            "argument " + std::to_string(i + 1) + " of " + fn.name.Lexical() +
            " does not match " + fn.param_types[i].ToString());
      }
      frame[fn.param_slots[i]] = LazySeq::FromVector(std::move(args[i]));
    }
    FrameGuard guard(ctx_, std::move(frame));
    // The focus is not visible inside function bodies.
    std::vector<Focus> saved_focus;
    saved_focus.swap(focus_);
    auto result = Eval(fn.body.get());
    focus_.swap(saved_focus);
    return result;
  }
  return CallBuiltin(static_cast<Builtin>(e->builtin), args, ctx_,
                     CurrentFocusInfo());
}

Result<Sequence> Interpreter::EvalElementCtor(const ElementCtorExpr* e) {
  QName name = e->name;
  size_t start = 0;
  if (e->computed_name) {
    XQP_ASSIGN_OR_RETURN(Sequence name_v, Eval(e->child(0)));
    XQP_ASSIGN_OR_RETURN(name, ComputedName(name_v));
    start = 1;
  }
  std::vector<Sequence> parts;
  for (size_t i = start; i < e->NumChildren(); ++i) {
    XQP_ASSIGN_OR_RETURN(Sequence part, Eval(e->child(i)));
    parts.push_back(std::move(part));
  }
  XQP_ASSIGN_OR_RETURN(Item item,
                       construct::Element(name, e->ns_decls, parts, ctx_));
  return Sequence{std::move(item)};
}

Result<Sequence> EvalExpr(const Expr* e, DynamicContext* ctx) {
  Interpreter interp(ctx);
  return interp.Eval(e);
}

}  // namespace xqp
