#ifndef XQP_EXEC_INTERPRETER_H_
#define XQP_EXEC_INTERPRETER_H_

#include "exec/builtins.h"
#include "exec/dynamic_context.h"
#include "exec/item.h"
#include "query/static_context.h"

namespace xqp {

/// The eager, fully materializing reference evaluator: every subexpression
/// is evaluated to a complete Sequence before its parent continues. This is
/// the baseline against which the streaming/lazy iterator engine is
/// differential-tested and benchmarked (experiments E1/E2/E8).
class Interpreter {
 public:
  explicit Interpreter(DynamicContext* ctx) : ctx_(ctx) {}

  /// Evaluates `e` under the current context. If the dynamic context has an
  /// initial context item, it is in scope as "." at the top level. When the
  /// context carries a QueryProfile, each evaluation records invocation
  /// count, result cardinality, and inclusive wall time per expression node;
  /// otherwise the profiling hook is a single pointer test.
  Result<Sequence> Eval(const Expr* e);

 private:
  /// The unprofiled evaluation switch Eval dispatches to.
  Result<Sequence> EvalDispatch(const Expr* e);

  struct Focus {
    Item item;
    int64_t position = 0;
    int64_t size = 0;
  };

  Result<Sequence> EvalPath(const PathExpr* e);
  Result<Sequence> EvalStep(const StepExpr* e);
  Result<Sequence> EvalFilter(const FilterExpr* e);
  Result<Sequence> EvalFlwor(const FlworExpr* e);
  Result<Sequence> EvalQuantified(const QuantifiedExpr* e);
  Result<Sequence> EvalTypeswitch(const TypeswitchExpr* e);
  Result<Sequence> EvalCall(const FunctionCallExpr* e);
  Result<Sequence> EvalElementCtor(const ElementCtorExpr* e);

  /// Current context item (error when absent).
  Result<Item> ContextItem() const;
  FocusInfo CurrentFocusInfo() const;

  DynamicContext* ctx_;
  std::vector<Focus> focus_;
};

/// Convenience: evaluates a whole module body (after globals are bound).
Result<Sequence> EvalExpr(const Expr* e, DynamicContext* ctx);

/// Runtime name resolution for computed element/attribute names: accepts an
/// xs:QName value (Clark form) or a string/untyped lexical name (no prefix
/// resolution at runtime — unprefixed names land in no namespace).
Result<QName> ComputedName(const Sequence& name_value);

}  // namespace xqp

#endif  // XQP_EXEC_INTERPRETER_H_
