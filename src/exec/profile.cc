#include "exec/profile.h"

#include <cstdio>
#include <vector>

namespace xqp {

namespace {

std::string FlagSuffix(const PathExpr& p) {
  std::string flags;
  if (p.needs_sort) flags += "sort";
  if (p.needs_dedup) flags += flags.empty() ? "dedup" : " dedup";
  if (p.index_candidate) flags += flags.empty() ? "index" : " index";
  std::string out;
  if (!flags.empty()) out = " [" + flags + "]";
  // Access-path annotation (kAuto means "not decided": cold index cache or
  // not a candidate) — kept as a separate bracket so the "[index]" marker
  // above stays stable for plans compiled with indexes enabled.
  if (p.access_path != AccessPath::kAuto) {
    out += " [access: ";
    out += AccessPathName(p.access_path);
    out += ", est=" + std::to_string(p.access_est) + "]";
  }
  return out;
}

/// Clause/role annotation for child `i` of `parent`, e.g. "for $x in: ".
std::string ChildPrefix(const Expr& parent, size_t i) {
  switch (parent.kind()) {
    case ExprKind::kFlwor: {
      const auto& f = static_cast<const FlworExpr&>(parent);
      if (i >= f.clauses.size()) return "return: ";
      const FlworExpr::Clause& c = f.clauses[i];
      switch (c.type) {
        case FlworExpr::Clause::Type::kFor:
          return "for $" + c.var.Lexical() + " in: ";
        case FlworExpr::Clause::Type::kLet:
          return "let $" + c.var.Lexical() + " := ";
        case FlworExpr::Clause::Type::kWhere:
          return "where: ";
        case FlworExpr::Clause::Type::kOrderSpec:
          return "order-by: ";
      }
      return "";
    }
    case ExprKind::kIf:
      return i == 0 ? "if: " : i == 1 ? "then: " : "else: ";
    case ExprKind::kQuantified: {
      const auto& q = static_cast<const QuantifiedExpr&>(parent);
      if (i >= q.bindings.size()) return "satisfies: ";
      return "$" + q.bindings[i].var.Lexical() + " in: ";
    }
    case ExprKind::kTypeswitch: {
      const auto& t = static_cast<const TypeswitchExpr&>(parent);
      if (i == 0) return "operand: ";
      if (i <= t.cases.size()) {
        return "case " + t.cases[i - 1].type.ToString() + ": ";
      }
      return "default: ";
    }
    case ExprKind::kFilter:
      return i == 0 ? "" : "predicate: ";
    case ExprKind::kTryCatch:
      return i == 0 ? "try: " : "catch: ";
    default:
      return "";
  }
}

void AppendDuration(uint64_t ns, std::string* out) {
  char buf[32];
  if (ns >= 1000000000ULL) {
    std::snprintf(buf, sizeof(buf), "%.2fs", double(ns) / 1e9);
  } else if (ns >= 1000000ULL) {
    std::snprintf(buf, sizeof(buf), "%.2fms", double(ns) / 1e6);
  } else if (ns >= 1000ULL) {
    std::snprintf(buf, sizeof(buf), "%.2fus", double(ns) / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%lluns",
                  static_cast<unsigned long long>(ns));
  }
  *out += buf;
}

struct Line {
  std::string label;
  const Expr* e;
};

void CollectLines(const Expr& e, int depth, const std::string& prefix,
                  std::vector<Line>* out,
                  const ExplainAnnotator* annotate = nullptr) {
  Line line;
  line.label.assign(size_t(depth) * 2, ' ');
  line.label += prefix;
  line.label += OperatorLabel(e);
  if (annotate != nullptr) line.label += (*annotate)(e);
  line.e = &e;
  out->push_back(std::move(line));
  for (size_t i = 0; i < e.NumChildren(); ++i) {
    CollectLines(*e.child(i), depth + 1, ChildPrefix(e, i), out, annotate);
  }
}

void RenderJsonNode(const Expr& e, const QueryProfile& profile,
                    std::string* out) {
  const OpStats* s = profile.Find(&e);
  OpStats zero;
  if (s == nullptr) s = &zero;
  *out += "{\"op\":\"";
  AppendJsonEscaped(OperatorLabel(e), out);
  *out += "\",\"kind\":\"";
  AppendJsonEscaped(ExprKindName(e.kind()), out);
  *out += "\",\"next_calls\":" + std::to_string(s->next_calls);
  *out += ",\"items\":" + std::to_string(s->items);
  *out += ",\"wall_ns\":" + std::to_string(s->wall_ns);
  *out += ",\"resets\":" + std::to_string(s->resets);
  *out += ",\"children\":[";
  for (size_t i = 0; i < e.NumChildren(); ++i) {
    if (i > 0) *out += ",";
    RenderJsonNode(*e.child(i), profile, out);
  }
  *out += "]}";
}

}  // namespace

std::string OperatorLabel(const Expr& e) {
  switch (e.kind()) {
    case ExprKind::kLiteral:
      return "literal " + static_cast<const LiteralExpr&>(e).value.Lexical();
    case ExprKind::kVarRef:
      return "var $" + static_cast<const VarRefExpr&>(e).name.Lexical();
    case ExprKind::kContextItem:
      return "context-item";
    case ExprKind::kRoot:
      return "root";
    case ExprKind::kSequence:
      return "sequence";
    case ExprKind::kRange:
      return "range";
    case ExprKind::kArithmetic:
      return std::string("arith ") +
             std::string(ArithOpName(static_cast<const ArithmeticExpr&>(e).op));
    case ExprKind::kUnary:
      return static_cast<const UnaryExpr&>(e).negate ? "unary -" : "unary +";
    case ExprKind::kComparison:
      return std::string("compare ") +
             std::string(CompOpName(static_cast<const ComparisonExpr&>(e).op));
    case ExprKind::kLogical:
      return static_cast<const LogicalExpr&>(e).is_and ? "and" : "or";
    case ExprKind::kPath:
      return "path" + FlagSuffix(static_cast<const PathExpr&>(e));
    case ExprKind::kStep: {
      const auto& s = static_cast<const StepExpr&>(e);
      return "step " + std::string(AxisName(s.axis)) + "::" +
             s.test.ToString();
    }
    case ExprKind::kFilter:
      return "filter";
    case ExprKind::kFlwor:
      return "flwor";
    case ExprKind::kQuantified:
      return static_cast<const QuantifiedExpr&>(e).is_every ? "every" : "some";
    case ExprKind::kIf:
      return "if";
    case ExprKind::kTypeswitch:
      return "typeswitch";
    case ExprKind::kInstanceOf:
      return "instance-of " +
             static_cast<const InstanceOfExpr&>(e).type.ToString();
    case ExprKind::kTreatAs:
      return "treat-as " + static_cast<const TreatExpr&>(e).type.ToString();
    case ExprKind::kCastAs:
      return "cast-as";
    case ExprKind::kCastableAs:
      return "castable-as";
    case ExprKind::kUnion:
      return "union";
    case ExprKind::kIntersectExcept:
      return static_cast<const IntersectExceptExpr&>(e).is_except ? "except"
                                                                  : "intersect";
    case ExprKind::kFunctionCall:
      return "call " +
             static_cast<const FunctionCallExpr&>(e).name.Lexical();
    case ExprKind::kElementCtor: {
      const auto& c = static_cast<const ElementCtorExpr&>(e);
      return c.computed_name ? "element-ctor (computed)"
                             : "element-ctor " + c.name.Lexical();
    }
    case ExprKind::kAttributeCtor: {
      const auto& c = static_cast<const AttributeCtorExpr&>(e);
      return c.computed_name ? "attribute-ctor (computed)"
                             : "attribute-ctor " + c.name.Lexical();
    }
    case ExprKind::kTextCtor:
      return "text-ctor";
    case ExprKind::kCommentCtor:
      return "comment-ctor";
    case ExprKind::kPiCtor:
      return "pi-ctor " + static_cast<const PiCtorExpr&>(e).target;
    case ExprKind::kDocumentCtor:
      return "document-ctor";
    case ExprKind::kTryCatch:
      return "try-catch";
  }
  return std::string(ExprKindName(e.kind()));
}

std::string RenderExplainTree(const Expr& root) {
  std::vector<Line> lines;
  CollectLines(root, 0, "", &lines);
  std::string out;
  for (const Line& line : lines) {
    out += line.label;
    out += '\n';
  }
  return out;
}

std::string RenderExplainTree(const Expr& root,
                              const ExplainAnnotator& annotate) {
  std::vector<Line> lines;
  CollectLines(root, 0, "", &lines, annotate ? &annotate : nullptr);
  std::string out;
  for (const Line& line : lines) {
    out += line.label;
    out += '\n';
  }
  return out;
}

std::string RenderProfileText(const Expr& root, const QueryProfile& profile) {
  std::vector<Line> lines;
  CollectLines(root, 0, "", &lines);
  size_t width = 24;
  for (const Line& line : lines) {
    if (line.label.size() > width) width = line.label.size();
  }
  std::string out = "operator";
  out.append(width > 8 ? width - 8 : 1, ' ');
  out += "  next     items    wall\n";
  for (const Line& line : lines) {
    out += line.label;
    out.append(width - line.label.size(), ' ');
    const OpStats* s = profile.Find(line.e);
    OpStats zero;
    if (s == nullptr) s = &zero;
    char buf[64];
    std::snprintf(buf, sizeof(buf), "  %-8llu %-8llu ",
                  static_cast<unsigned long long>(s->next_calls),
                  static_cast<unsigned long long>(s->items));
    out += buf;
    AppendDuration(s->wall_ns, &out);
    out += '\n';
  }
  return out;
}

std::string RenderProfileJson(const Expr& root, const QueryProfile& profile) {
  std::string out;
  RenderJsonNode(root, profile, &out);
  return out;
}

void AppendJsonEscaped(std::string_view s, std::string* out) {
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          *out += c;
        }
        break;
    }
  }
}

}  // namespace xqp
