#include "base/metrics.h"
#include "exec/interpreter.h"
#include "exec/iterators.h"
#include "exec/profile.h"

namespace xqp {
namespace lazy_internal {

namespace {

/// Non-owning pass-through; lets a LazySeq buffer a let-clause iterator the
/// FLWOR machine still owns (the paper's buffer iterator factory: the
/// binding's consumers pull through a shared, incrementally filled buffer).
class NonOwningIt : public ItemIterator {
 public:
  explicit NonOwningIt(ItemIterator* inner) : inner_(inner) {}
  Status Reset(DynamicContext* ctx) override { return inner_->Reset(ctx); }
  Result<bool> Next(Item* out) override { return inner_->Next(out); }

 private:
  ItemIterator* inner_;
};

/// Streaming FLWOR tuple machine. Order-by FLWORs are blocking by nature
/// and delegate to the eager evaluator; everything else streams tuples:
/// for-domains are pulled one binding at a time and the return expression
/// is drained per tuple before the machine advances.
class FlworIt : public ItemIterator {
 public:
  explicit FlworIt(const FlworExpr* e) : e_(e) {}

  Status Init(const LazyFocus* focus) {
    for (const auto& c : e_->clauses) {
      if (c.type == FlworExpr::Clause::Type::kOrderSpec) has_order_ = true;
    }
    if (has_order_) return Status::OK();  // Eager fallback at Reset.
    for (size_t i = 0; i < e_->NumChildren(); ++i) {
      XQP_ASSIGN_OR_RETURN(std::unique_ptr<ItemIterator> it,
                           CompileIterator(e_->child(i), focus));
      children_.push_back(std::move(it));
    }
    return Status::OK();
  }

  Status Reset(DynamicContext* ctx) override {
    ctx_ = ctx;
    if (has_order_) {
      ordered_result_.clear();
      ordered_pos_ = 0;
      ordered_done_ = false;
      return Status::OK();
    }
    for_pos_.assign(e_->clauses.size(), 0);
    tuple_open_ = false;
    machine_done_ = false;
    first_tuple_ = true;
    return Status::OK();
  }

  Result<bool> Next(Item* out) override {
    if (has_order_) {
      if (!ordered_done_) {
        // Sorting blocks; reuse the reference evaluator for the whole
        // order-by FLWOR (a legitimate materialization point). Suppress
        // per-operator profiling inside the fallback: the enclosing
        // ProfileIt already attributes the whole subtree to this FLWOR
        // node, and letting the interpreter record against the same
        // expression nodes would double-count.
        if (metrics::Enabled()) {
          static metrics::Counter* fallbacks = metrics::MetricsRegistry::
              Global().counter("lazy.flwor.orderby_eager_fallback");
          fallbacks->Increment();
        }
        QueryProfile* saved_profile = ctx_->profile;
        ctx_->profile = nullptr;
        auto ordered = EvalExpr(e_, ctx_);
        ctx_->profile = saved_profile;
        XQP_ASSIGN_OR_RETURN(ordered_result_, std::move(ordered));
        ordered_done_ = true;
      }
      if (ordered_pos_ >= ordered_result_.size()) return false;
      *out = ordered_result_[ordered_pos_++];
      return true;
    }
    while (true) {
      // Per-tuple poll: cartesian for-clauses make the tuple space (and
      // the where-miss stream) unbounded relative to the items returned.
      if (ctx_->governor != nullptr) {
        XQP_RETURN_NOT_OK(ctx_->governor->Poll());
      }
      if (tuple_open_) {
        XQP_ASSIGN_OR_RETURN(bool got, ReturnIter()->Next(out));
        if (got) return true;
        tuple_open_ = false;
      }
      if (machine_done_) return false;
      XQP_ASSIGN_OR_RETURN(bool have_tuple, NextTuple());
      if (!have_tuple) {
        machine_done_ = true;
        return false;
      }
      XQP_RETURN_NOT_OK(ReturnIter()->Reset(ctx_));
      tuple_open_ = true;
    }
  }

 private:
  ItemIterator* ReturnIter() { return children_.back().get(); }

  /// Establishes the next complete tuple. On the first call it opens all
  /// clauses from 0; afterwards it backtracks to the deepest for clause
  /// with remaining items.
  Result<bool> NextTuple() {
    size_t n = e_->clauses.size();
    size_t i;
    if (first_tuple_) {
      first_tuple_ = false;
      i = 0;
      XQP_ASSIGN_OR_RETURN(bool ok, OpenForward(&i, 0));
      return ok;
    }
    // Backtrack from the end.
    XQP_ASSIGN_OR_RETURN(bool ok, Backtrack(&i, n));
    if (!ok) return false;
    XQP_ASSIGN_OR_RETURN(ok, OpenForward(&i, i));
    return ok;
  }

  /// Runs clauses [start, n) forward, opening for-domains fresh. On a
  /// where-miss or an exhausted fresh for-domain, backtracks.
  Result<bool> OpenForward(size_t* out_i, size_t start) {
    size_t n = e_->clauses.size();
    size_t i = start;
    while (i < n) {
      // Poll here, not just in Next(): a run of where-misses backtracks and
      // reopens entirely inside this loop, so a selective where over a big
      // cartesian domain would otherwise never reach a governor check.
      if (ctx_->governor != nullptr) {
        XQP_RETURN_NOT_OK(ctx_->governor->Poll());
      }
      const FlworExpr::Clause& c = e_->clauses[i];
      switch (c.type) {
        case FlworExpr::Clause::Type::kLet: {
          XQP_RETURN_NOT_OK(children_[i]->Reset(ctx_));
          // Lazy binding: consumers pull through a shared buffer.
          ctx_->slots[c.var_slot] = LazySeq::FromIterator(
              std::make_unique<NonOwningIt>(children_[i].get()));
          ++i;
          break;
        }
        case FlworExpr::Clause::Type::kWhere: {
          XQP_RETURN_NOT_OK(children_[i]->Reset(ctx_));
          XQP_ASSIGN_OR_RETURN(bool pass, StreamingEbv(children_[i].get()));
          if (pass) {
            ++i;
            break;
          }
          XQP_ASSIGN_OR_RETURN(bool ok, Backtrack(&i, i));
          if (!ok) return false;
          break;
        }
        case FlworExpr::Clause::Type::kFor: {
          XQP_RETURN_NOT_OK(children_[i]->Reset(ctx_));
          for_pos_[i] = 0;
          Item item;
          XQP_ASSIGN_OR_RETURN(bool got, children_[i]->Next(&item));
          if (got) {
            BindFor(i, std::move(item));
            ++i;
            break;
          }
          XQP_ASSIGN_OR_RETURN(bool ok, Backtrack(&i, i));
          if (!ok) return false;
          break;
        }
        case FlworExpr::Clause::Type::kOrderSpec:
          return Status::Internal("order spec in streaming FLWOR");
      }
    }
    *out_i = i;
    return true;
  }

  /// Finds the deepest for clause before `limit` with another item; binds
  /// it and sets *resume to the following clause. Returns false when the
  /// whole tuple stream is exhausted.
  Result<bool> Backtrack(size_t* resume, size_t limit) {
    for (size_t j = limit; j-- > 0;) {
      if (e_->clauses[j].type != FlworExpr::Clause::Type::kFor) continue;
      Item item;
      XQP_ASSIGN_OR_RETURN(bool got, children_[j]->Next(&item));
      if (got) {
        BindFor(j, std::move(item));
        *resume = j + 1;
        return true;
      }
    }
    return false;
  }

  void BindFor(size_t i, Item item) {
    const FlworExpr::Clause& c = e_->clauses[i];
    ctx_->slots[c.var_slot] = LazySeq::FromItem(std::move(item));
    ++for_pos_[i];
    if (c.pos_slot >= 0) {
      ctx_->slots[c.pos_slot] =
          LazySeq::FromItem(Item(AtomicValue::Integer(for_pos_[i])));
    }
  }

  const FlworExpr* e_;
  std::vector<std::unique_ptr<ItemIterator>> children_;
  DynamicContext* ctx_ = nullptr;
  bool has_order_ = false;
  // Streaming state.
  std::vector<int64_t> for_pos_;
  bool tuple_open_ = false;
  bool machine_done_ = false;
  bool first_tuple_ = true;
  // Order-by fallback state.
  Sequence ordered_result_;
  size_t ordered_pos_ = 0;
  bool ordered_done_ = false;
};

/// some/every with early exit; pulls domains lazily (the paper's
/// endlessOnes() example terminates here).
class QuantifiedIt : public ItemIterator {
 public:
  explicit QuantifiedIt(const QuantifiedExpr* e) : e_(e) {}

  Status Init(const LazyFocus* focus) {
    for (size_t i = 0; i < e_->NumChildren(); ++i) {
      XQP_ASSIGN_OR_RETURN(std::unique_ptr<ItemIterator> it,
                           CompileIterator(e_->child(i), focus));
      children_.push_back(std::move(it));
    }
    return Status::OK();
  }

  Status Reset(DynamicContext* ctx) override {
    ctx_ = ctx;
    done_ = false;
    return Status::OK();
  }

  Result<bool> Next(Item* out) override {
    if (done_) return false;
    done_ = true;
    XQP_ASSIGN_OR_RETURN(bool value, Run(0));
    *out = Item(AtomicValue::Boolean(value));
    return true;
  }

 private:
  Result<bool> Run(size_t bi) {
    if (bi == e_->bindings.size()) {
      XQP_RETURN_NOT_OK(children_.back()->Reset(ctx_));
      return StreamingEbv(children_.back().get());
    }
    XQP_RETURN_NOT_OK(children_[bi]->Reset(ctx_));
    while (true) {
      if (ctx_->governor != nullptr) {
        XQP_RETURN_NOT_OK(ctx_->governor->Poll());
      }
      Item item;
      XQP_ASSIGN_OR_RETURN(bool got, children_[bi]->Next(&item));
      if (!got) break;
      ctx_->slots[e_->bindings[bi].var_slot] = LazySeq::FromItem(std::move(item));
      XQP_ASSIGN_OR_RETURN(bool b, Run(bi + 1));
      if (b != e_->is_every) return b;  // Early exit.
    }
    return e_->is_every;
  }

  const QuantifiedExpr* e_;
  std::vector<std::unique_ptr<ItemIterator>> children_;
  DynamicContext* ctx_ = nullptr;
  bool done_ = false;
};

}  // namespace

Result<std::unique_ptr<ItemIterator>> CompileFlwor(const FlworExpr* e,
                                                   const LazyFocus* focus) {
  auto it = std::make_unique<FlworIt>(e);
  XQP_RETURN_NOT_OK(it->Init(focus));
  return std::unique_ptr<ItemIterator>(std::move(it));
}

Result<std::unique_ptr<ItemIterator>> CompileQuantified(
    const QuantifiedExpr* e, const LazyFocus* focus) {
  auto it = std::make_unique<QuantifiedIt>(e);
  XQP_RETURN_NOT_OK(it->Init(focus));
  return std::unique_ptr<ItemIterator>(std::move(it));
}

}  // namespace lazy_internal
}  // namespace xqp
