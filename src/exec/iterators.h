#ifndef XQP_EXEC_ITERATORS_H_
#define XQP_EXEC_ITERATORS_H_

#include <memory>

#include "exec/dynamic_context.h"
#include "exec/lazy_seq.h"
#include "query/expr.h"

namespace xqp {

/// The focus a compiled iterator subtree reads: owned by the enclosing
/// path/filter iterator, bound at compile time by address. `size` is -1
/// when unknown (fn:last() then forces the owner to materialize its input,
/// guided by the uses_last analysis).
struct LazyFocus {
  bool valid = false;
  Item item;
  int64_t position = 0;
  int64_t size = -1;
};

/// Compiles an expression into a pull-based iterator tree (the paper's
/// TokenIterator execution model at item granularity): open/next via
/// Reset/Next, lazy evaluation throughout, materialization only at the
/// blocking points (document-order sorts, order by, aggregates, node
/// construction). `focus` is the statically enclosing focus, or nullptr at
/// the top level.
Result<std::unique_ptr<ItemIterator>> CompileIterator(const Expr* e,
                                                      const LazyFocus* focus);

/// Compiles, resets, and drains `e` under `ctx`.
Result<Sequence> ExecuteLazy(const Expr* e, DynamicContext* ctx);

/// Compiles and resets `e`, returning the iterator for incremental
/// consumption (time-to-first-item measurements, experiment E1).
Result<std::unique_ptr<ItemIterator>> OpenLazy(const Expr* e,
                                               DynamicContext* ctx);

/// Streaming effective boolean value: pulls at most two items.
Result<bool> StreamingEbv(ItemIterator* it);

namespace lazy_internal {

Result<std::unique_ptr<ItemIterator>> CompilePath(const PathExpr* e,
                                                  const LazyFocus* focus);
Result<std::unique_ptr<ItemIterator>> CompileStep(const StepExpr* e,
                                                  const LazyFocus* focus);
Result<std::unique_ptr<ItemIterator>> CompileFilter(const FilterExpr* e,
                                                    const LazyFocus* focus);
Result<std::unique_ptr<ItemIterator>> CompileFlwor(const FlworExpr* e,
                                                   const LazyFocus* focus);
Result<std::unique_ptr<ItemIterator>> CompileQuantified(
    const QuantifiedExpr* e, const LazyFocus* focus);

/// Drains `it` into a vector.
Result<Sequence> Drain(ItemIterator* it);

}  // namespace lazy_internal

}  // namespace xqp

#endif  // XQP_EXEC_ITERATORS_H_
