#include "exec/axes.h"

namespace xqp {

AxisCursor::AxisCursor(const Node& origin, Axis axis, const NodeTest* test)
    : origin_(origin), axis_(axis), test_(test) {
  if (origin.IsNull()) {
    done_ = true;
    return;
  }
  const Document& doc = origin.doc();
  const NodeRecord& rec = doc.node(origin.index());
  switch (axis_) {
    case Axis::kChild:
      current_ = rec.first_child;
      break;
    case Axis::kAttribute:
      current_ = rec.first_attr;
      break;
    case Axis::kSelf:
      include_self_pending_ = true;
      break;
    case Axis::kParent:
      current_ = rec.parent;
      break;
    case Axis::kAncestor:
      current_ = rec.parent;
      break;
    case Axis::kAncestorOrSelf:
      include_self_pending_ = true;
      current_ = rec.parent;
      break;
    case Axis::kDescendant:
    case Axis::kDescendantOrSelf: {
      include_self_pending_ = axis_ == Axis::kDescendantOrSelf;
      // Descendants occupy rows (origin, rec.end]; attributes are skipped
      // during the scan.
      scan_ = origin.index() + 1;
      scan_end_ = rec.end;
      break;
    }
    case Axis::kFollowingSibling:
      current_ = rec.kind == NodeKind::kAttribute ? kNullNode
                                                  : rec.next_sibling;
      break;
    case Axis::kPrecedingSibling: {
      // Walk later; handled in Next() by scanning parent's children.
      current_ = kNullNode;
      if (rec.parent != kNullNode && rec.kind != NodeKind::kAttribute) {
        scan_ = doc.node(rec.parent).first_child;
        scan_end_ = origin.index();
      } else {
        done_ = true;
      }
      break;
    }
    case Axis::kFollowing: {
      // All nodes after the subtree, minus attributes.
      scan_ = rec.kind == NodeKind::kAttribute
                  ? origin.index() + 1  // Attribute: following starts after it.
                  : rec.end + 1;
      scan_end_ = static_cast<NodeIndex>(doc.NumNodes() - 1);
      if (scan_ > scan_end_ || doc.NumNodes() == 0) done_ = true;
      break;
    }
    case Axis::kPreceding: {
      // Scan backwards from origin-1 to 1, excluding ancestors/attributes.
      scan_ = origin.index() == 0 ? kNullNode : origin.index() - 1;
      scan_end_ = 1;
      if (origin.index() <= 1) done_ = true;
      break;
    }
  }
}

bool AxisCursor::Matches(NodeIndex i) const {
  if (test_ == nullptr) return true;
  return test_->Matches(origin_.doc(), i, axis_ == Axis::kAttribute);
}

bool AxisCursor::Candidate(Node* out) {
  const Document& doc = origin_.doc();
  switch (axis_) {
    case Axis::kSelf:
      if (!include_self_pending_) return false;
      include_self_pending_ = false;
      *out = origin_;
      return true;
    case Axis::kChild:
    case Axis::kAttribute:
    case Axis::kFollowingSibling: {
      if (current_ == kNullNode) return false;
      *out = Node(origin_.doc_ptr(), current_);
      current_ = doc.node(current_).next_sibling;
      return true;
    }
    case Axis::kParent:
      if (current_ == kNullNode) return false;
      *out = Node(origin_.doc_ptr(), current_);
      current_ = kNullNode;
      return true;
    case Axis::kAncestor:
    case Axis::kAncestorOrSelf: {
      if (include_self_pending_) {
        include_self_pending_ = false;
        *out = origin_;
        return true;
      }
      if (current_ == kNullNode) return false;
      *out = Node(origin_.doc_ptr(), current_);
      current_ = doc.node(current_).parent;
      return true;
    }
    case Axis::kDescendant:
    case Axis::kDescendantOrSelf: {
      if (include_self_pending_) {
        include_self_pending_ = false;
        *out = origin_;
        return true;
      }
      while (scan_ != kNullNode && scan_ <= scan_end_ &&
             scan_ < doc.NumNodes()) {
        NodeIndex i = scan_++;
        if (doc.node(i).kind == NodeKind::kAttribute) continue;
        *out = Node(origin_.doc_ptr(), i);
        return true;
      }
      return false;
    }
    case Axis::kPrecedingSibling: {
      // Siblings before origin, in reverse document order. Collect lazily:
      // walk forward each time from scan_ to find the last sibling before
      // scan_end_. Sibling lists are short; O(k^2) worst case is fine.
      if (done_ || scan_ == kNullNode) return false;
      NodeIndex last = kNullNode;
      for (NodeIndex c = scan_; c != kNullNode && c < scan_end_;
           c = doc.node(c).next_sibling) {
        last = c;
      }
      if (last == kNullNode) {
        done_ = true;
        return false;
      }
      scan_end_ = last;
      *out = Node(origin_.doc_ptr(), last);
      return true;
    }
    case Axis::kFollowing: {
      while (!done_ && scan_ <= scan_end_ && scan_ < doc.NumNodes()) {
        NodeIndex i = scan_++;
        if (doc.node(i).kind == NodeKind::kAttribute) continue;
        *out = Node(origin_.doc_ptr(), i);
        return true;
      }
      return false;
    }
    case Axis::kPreceding: {
      while (!done_ && scan_ != kNullNode && scan_ >= scan_end_) {
        NodeIndex i = scan_;
        scan_ = (scan_ == scan_end_) ? kNullNode : scan_ - 1;
        const NodeRecord& rec = doc.node(i);
        if (rec.kind == NodeKind::kAttribute) continue;
        // Exclude ancestors of the origin.
        if (i < origin_.index() && origin_.index() <= rec.end) continue;
        *out = Node(origin_.doc_ptr(), i);
        return true;
      }
      return false;
    }
  }
  return false;
}

bool AxisCursor::Next(Node* out) {
  Node candidate;
  while (Candidate(&candidate)) {
    if (Matches(candidate.index())) {
      *out = candidate;
      return true;
    }
  }
  return false;
}

void CollectAxis(const Node& origin, Axis axis, const NodeTest& test,
                 Sequence* out) {
  AxisCursor cursor(origin, axis, &test);
  Node node;
  while (cursor.Next(&node)) out->push_back(Item(node));
}

}  // namespace xqp
