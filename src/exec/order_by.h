#ifndef XQP_EXEC_ORDER_BY_H_
#define XQP_EXEC_ORDER_BY_H_

#include <vector>

#include "exec/item.h"

namespace xqp {

/// Shared FLWOR order-by semantics, used by both the eager interpreter's
/// tuple stream and the VM's kSortTuples opcode so the two backends sort
/// with literally the same comparator (typed comparison, untyped-to-string
/// cast, empty greatest/least, error capture) and stay bit-identical.
namespace flwor {

/// One evaluated order-spec key: absent for the empty sequence, otherwise
/// the single atomized value (untypedAtomic already cast to xs:string).
struct OrderKey {
  bool present = false;
  AtomicValue value;
};

/// The static modifiers of one order spec, in clause order.
struct OrderSpecFlags {
  bool descending = false;
  bool empty_least = true;
};

/// One FLWOR tuple awaiting the sort: its keys (one per order spec, in
/// clause order) and the evaluated return value.
struct OrderedTuple {
  std::vector<OrderKey> keys;
  Sequence result;
};

/// Atomizes a raw order-by key sequence into its key cell. More than one
/// item is a type error; untypedAtomic compares as xs:string.
Result<OrderKey> MakeOrderKey(const Sequence& raw);

/// Stable-sorts `tuples` by their keys under `specs`. Key pairs the typed
/// comparison cannot order (NaN, kUnordered) compare equal; the first
/// comparison error encountered is returned after the sort finishes, the
/// interpreter's historical behavior.
Status SortTuples(std::vector<OrderedTuple>* tuples,
                  const std::vector<OrderSpecFlags>& specs);

}  // namespace flwor

}  // namespace xqp

#endif  // XQP_EXEC_ORDER_BY_H_
