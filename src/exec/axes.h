#ifndef XQP_EXEC_AXES_H_
#define XQP_EXEC_AXES_H_

#include "exec/item.h"
#include "query/expr.h"
#include "xml/node.h"

namespace xqp {

/// Streaming cursor over one axis from one origin node, filtered by a node
/// test. Forward axes deliver document order; reverse axes deliver reverse
/// document order (the order XPath predicates count in). The caller owns
/// origin's document for the cursor's lifetime.
class AxisCursor {
 public:
  AxisCursor(const Node& origin, Axis axis, const NodeTest* test);

  /// Advances to the next matching node. Returns false at axis end.
  bool Next(Node* out);

 private:
  bool Candidate(Node* out);
  bool Matches(NodeIndex i) const;

  Node origin_;
  Axis axis_;
  const NodeTest* test_;
  // Walk state.
  NodeIndex current_ = kNullNode;
  NodeIndex scan_ = kNullNode;       // For range-scan axes.
  NodeIndex scan_end_ = kNullNode;   // Inclusive.
  bool done_ = false;
  bool include_self_pending_ = false;
};

/// Appends all nodes selected by `axis`/`test` from `origin` to `out`
/// (convenience for the eager interpreter and the navigation baseline).
void CollectAxis(const Node& origin, Axis axis, const NodeTest& test,
                 Sequence* out);

}  // namespace xqp

#endif  // XQP_EXEC_AXES_H_
