#include "exec/compare.h"

#include <cmath>

namespace xqp {

namespace {

Status IncomparableError(const AtomicValue& a, const AtomicValue& b) {
  return Status::TypeError("cannot compare " + std::string(XsTypeName(a.type())) +
                           " with " + std::string(XsTypeName(b.type())));
}

CmpResult CompareDoubles(double x, double y) {
  if (std::isnan(x) || std::isnan(y)) return CmpResult::kUnordered;
  if (x < y) return CmpResult::kLess;
  if (x > y) return CmpResult::kGreater;
  return CmpResult::kEqual;
}

CmpResult CompareStrings(const std::string& x, const std::string& y) {
  int c = x.compare(y);
  return c < 0 ? CmpResult::kLess : c > 0 ? CmpResult::kGreater : CmpResult::kEqual;
}

Result<bool> ApplyOp(CompOp op, CmpResult r) {
  if (r == CmpResult::kUnordered) return false;  // NaN comparisons are false.
  int c = static_cast<int>(r);
  switch (op) {
    case CompOp::kValueEq:
    case CompOp::kGenEq:
      return c == 0;
    case CompOp::kValueNe:
    case CompOp::kGenNe:
      return c != 0;
    case CompOp::kValueLt:
    case CompOp::kGenLt:
      return c < 0;
    case CompOp::kValueLe:
    case CompOp::kGenLe:
      return c <= 0;
    case CompOp::kValueGt:
    case CompOp::kGenGt:
      return c > 0;
    case CompOp::kValueGe:
    case CompOp::kGenGe:
      return c >= 0;
    default:
      return Status::Internal("ApplyOp: not an ordering operator");
  }
}

/// For != with NaN the result is true per IEEE semantics in XPath.
Result<bool> ApplyOpNanAware(CompOp op, CmpResult r) {
  if (r == CmpResult::kUnordered &&
      (op == CompOp::kValueNe || op == CompOp::kGenNe)) {
    return true;
  }
  return ApplyOp(op, r);
}

}  // namespace

Result<CmpResult> CompareAtomicValues(const AtomicValue& a,
                                      const AtomicValue& b) {
  // untypedAtomic behaves like xs:string in value comparisons.
  bool a_str = a.IsStringLike();
  bool b_str = b.IsStringLike();
  if (a_str && b_str) return CompareStrings(a.AsString(), b.AsString());
  if (a.IsNumeric() && b.IsNumeric()) {
    if (a.type() == XsType::kInteger && b.type() == XsType::kInteger) {
      int64_t x = a.AsInt();
      int64_t y = b.AsInt();
      return x < y ? CmpResult::kLess
                   : x > y ? CmpResult::kGreater : CmpResult::kEqual;
    }
    return CompareDoubles(a.NumericAsDouble(), b.NumericAsDouble());
  }
  if (a.type() == XsType::kBoolean && b.type() == XsType::kBoolean) {
    int x = a.AsBool() ? 1 : 0;
    int y = b.AsBool() ? 1 : 0;
    return x < y ? CmpResult::kLess
                 : x > y ? CmpResult::kGreater : CmpResult::kEqual;
  }
  if (a.type() == XsType::kQName && b.type() == XsType::kQName) {
    return a.AsString() == b.AsString() ? CmpResult::kEqual
                                        : CmpResult::kUnordered;
  }
  return IncomparableError(a, b);
}

Result<Sequence> EvalValueComparison(CompOp op, const Sequence& lhs,
                                     const Sequence& rhs) {
  if (lhs.empty() || rhs.empty()) return Sequence{};
  if (lhs.size() != 1 || rhs.size() != 1) {
    return Status::TypeError("value comparison requires singleton operands");
  }
  XQP_ASSIGN_OR_RETURN(CmpResult r, CompareAtomicValues(lhs[0].AsAtomic(),
                                                        rhs[0].AsAtomic()));
  XQP_ASSIGN_OR_RETURN(bool out, ApplyOpNanAware(op, r));
  return Sequence{Item(AtomicValue::Boolean(out))};
}

namespace {

/// Dynamic-cast rules for one general-comparison pair.
Result<CmpResult> GeneralPairCompare(const AtomicValue& a,
                                     const AtomicValue& b) {
  bool a_untyped = a.type() == XsType::kUntypedAtomic;
  bool b_untyped = b.type() == XsType::kUntypedAtomic;
  if (a_untyped || b_untyped) {
    const AtomicValue& u = a_untyped ? a : b;
    const AtomicValue& o = a_untyped ? b : a;
    if (o.IsNumeric()) {
      XQP_ASSIGN_OR_RETURN(AtomicValue cast, u.CastTo(XsType::kDouble));
      CmpResult r = CompareDoubles(cast.AsRawDouble(), o.NumericAsDouble());
      return a_untyped ? r
                       : (r == CmpResult::kLess
                              ? CmpResult::kGreater
                              : r == CmpResult::kGreater ? CmpResult::kLess : r);
    }
    if (o.type() == XsType::kBoolean) {
      XQP_ASSIGN_OR_RETURN(AtomicValue cast, u.CastTo(XsType::kBoolean));
      int x = cast.AsBool() ? 1 : 0;
      int y = o.AsBool() ? 1 : 0;
      CmpResult r = x < y ? CmpResult::kLess
                          : x > y ? CmpResult::kGreater : CmpResult::kEqual;
      return a_untyped ? r
                       : (r == CmpResult::kLess
                              ? CmpResult::kGreater
                              : r == CmpResult::kGreater ? CmpResult::kLess : r);
    }
    // Otherwise compare as strings (untyped vs untyped/string/anyURI).
  }
  return CompareAtomicValues(a, b);
}

}  // namespace

Result<bool> EvalGeneralComparison(CompOp op, const Sequence& lhs,
                                   const Sequence& rhs) {
  for (const Item& li : lhs) {
    for (const Item& ri : rhs) {
      XQP_ASSIGN_OR_RETURN(CmpResult r,
                           GeneralPairCompare(li.AsAtomic(), ri.AsAtomic()));
      XQP_ASSIGN_OR_RETURN(bool sat, ApplyOpNanAware(op, r));
      if (sat) return true;
    }
  }
  return false;
}

Result<Sequence> EvalNodeComparison(CompOp op, const Sequence& lhs,
                                    const Sequence& rhs) {
  if (lhs.empty() || rhs.empty()) return Sequence{};
  if (lhs.size() != 1 || rhs.size() != 1 || !lhs[0].IsNode() ||
      !rhs[0].IsNode()) {
    return Status::TypeError("node comparison requires single node operands");
  }
  const Node& a = lhs[0].AsNode();
  const Node& b = rhs[0].AsNode();
  bool out = false;
  switch (op) {
    case CompOp::kIs:
      out = a.SameNode(b);
      break;
    case CompOp::kIsNot:
      out = !a.SameNode(b);
      break;
    case CompOp::kBefore:
      out = Node::CompareDocOrder(a, b) < 0;
      break;
    case CompOp::kAfter:
      out = Node::CompareDocOrder(a, b) > 0;
      break;
    default:
      return Status::Internal("not a node comparison");
  }
  return Sequence{Item(AtomicValue::Boolean(out))};
}

Result<CmpResult> CompareForOrdering(const AtomicValue& a,
                                     const AtomicValue& b) {
  bool a_untyped = a.type() == XsType::kUntypedAtomic;
  bool b_untyped = b.type() == XsType::kUntypedAtomic;
  // Cast untyped to double when the other side is numeric.
  if (a_untyped && b.IsNumeric()) {
    auto cast = a.CastTo(XsType::kDouble);
    if (!cast.ok()) return cast.status();
    double x = cast.value().AsRawDouble();
    if (std::isnan(x)) return CmpResult::kLess;  // NaN sorts first.
    return CompareDoubles(x, b.NumericAsDouble());
  }
  if (b_untyped && a.IsNumeric()) {
    auto cast = b.CastTo(XsType::kDouble);
    if (!cast.ok()) return cast.status();
    double y = cast.value().AsRawDouble();
    if (std::isnan(y)) return CmpResult::kGreater;
    return CompareDoubles(a.NumericAsDouble(), y);
  }
  if (a.IsNumeric() && b.IsNumeric()) {
    double x = a.NumericAsDouble();
    double y = b.NumericAsDouble();
    bool xn = std::isnan(x);
    bool yn = std::isnan(y);
    if (xn && yn) return CmpResult::kEqual;
    if (xn) return CmpResult::kLess;
    if (yn) return CmpResult::kGreater;
    return CompareDoubles(x, y);
  }
  return CompareAtomicValues(a, b);
}

}  // namespace xqp
