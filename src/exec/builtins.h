#ifndef XQP_EXEC_BUILTINS_H_
#define XQP_EXEC_BUILTINS_H_

#include <vector>

#include "exec/dynamic_context.h"
#include "exec/functions.h"
#include "exec/item.h"

namespace xqp {

/// The focus (context item / position / size) at a call site, needed by
/// position(), last(), and the zero-argument string functions.
struct FocusInfo {
  bool has_focus = false;
  Item item;
  int64_t position = 0;
  int64_t size = 0;
};

/// Evaluates builtin `id` over materialized argument sequences. Both
/// engines share this; the lazy engine special-cases the short-circuiting
/// builtins (empty/exists/head/boolean/not) before falling back here.
Result<Sequence> CallBuiltin(Builtin id, std::vector<Sequence>& args,
                             DynamicContext* ctx, const FocusInfo& focus);

}  // namespace xqp

#endif  // XQP_EXEC_BUILTINS_H_
