#ifndef XQP_EXEC_TYPE_MATCH_H_
#define XQP_EXEC_TYPE_MATCH_H_

#include "exec/item.h"
#include "query/sequence_type.h"

namespace xqp {

/// Dynamic "instance of" check for one item against an item type.
bool MatchesItemType(const Item& item, const ItemTypeTest& test);

/// Dynamic "instance of" check for a whole sequence (occurrence included).
bool MatchesSequenceType(const Sequence& seq, const SequenceType& type);

}  // namespace xqp

#endif  // XQP_EXEC_TYPE_MATCH_H_
