#include "exec/iterators.h"

#include <chrono>
#include <vector>

#include "exec/arithmetic.h"
#include "exec/builtins.h"
#include "exec/compare.h"
#include "exec/constructor.h"
#include "exec/interpreter.h"
#include "exec/profile.h"
#include "exec/type_match.h"

namespace xqp {

namespace {

/// Compile-time profiling gate. Set (via ProfileWrapScope) while compiling
/// an iterator tree for a profiled run: CompileIterator then wraps every
/// operator in a ProfileIt decorator. Unprofiled compilations see a single
/// thread_local bool test and produce undecorated trees, so disabled-mode
/// execution is byte-for-byte the pre-profiling engine.
thread_local bool tls_profile_wrap = false;

struct ProfileWrapScope {
  explicit ProfileWrapScope(bool enable)
      : saved_(tls_profile_wrap) {
    tls_profile_wrap = enable;
  }
  ~ProfileWrapScope() { tls_profile_wrap = saved_; }
  bool saved_;
};

}  // namespace

namespace lazy_internal {

Result<Sequence> Drain(ItemIterator* it) {
  Sequence out;
  Item item;
  while (true) {
    XQP_ASSIGN_OR_RETURN(bool got, it->Next(&item));
    if (!got) break;
    out.push_back(std::move(item));
  }
  return out;
}

}  // namespace lazy_internal

using lazy_internal::Drain;

Result<bool> StreamingEbv(ItemIterator* it) {
  Item first;
  XQP_ASSIGN_OR_RETURN(bool got, it->Next(&first));
  if (!got) return false;
  if (first.IsNode()) return true;  // Laziness: never pull past a node.
  Item second;
  XQP_ASSIGN_OR_RETURN(bool more, it->Next(&second));
  if (more) {
    return Status::TypeError(
        "effective boolean value of a multi-item atomic sequence");
  }
  Sequence single{first};
  return EffectiveBooleanValue(single);
}

namespace {

using lazy_internal::CompileFilter;
using lazy_internal::CompileFlwor;
using lazy_internal::CompilePath;
using lazy_internal::CompileQuantified;
using lazy_internal::CompileStep;

// ---------------------------------------------------------------------------
// Trivial sources
// ---------------------------------------------------------------------------

class LiteralIt : public ItemIterator {
 public:
  explicit LiteralIt(AtomicValue value) : value_(std::move(value)) {}
  Status Reset(DynamicContext* ctx) override {
    done_ = false;
    return Status::OK();
  }
  Result<bool> Next(Item* out) override {
    if (done_) return false;
    done_ = true;
    *out = Item(value_);
    return true;
  }

 private:
  AtomicValue value_;
  bool done_ = false;
};

class VarRefIt : public ItemIterator {
 public:
  explicit VarRefIt(const VarRefExpr* var) : var_(var) {}
  Status Reset(DynamicContext* ctx) override {
    const auto& frame = var_->is_global ? ctx->globals : ctx->slots;
    if (var_->slot < 0 || var_->slot >= static_cast<int>(frame.size()) ||
        frame[var_->slot] == nullptr) {
      return Status::DynamicError("unbound variable: $" + var_->name.Lexical());
    }
    seq_ = frame[var_->slot];
    pos_ = 0;
    return Status::OK();
  }
  Result<bool> Next(Item* out) override {
    XQP_ASSIGN_OR_RETURN(const Item* item, seq_->Get(pos_));
    if (item == nullptr) return false;
    ++pos_;
    *out = *item;
    return true;
  }

 private:
  const VarRefExpr* var_;
  LazySeqPtr seq_;
  size_t pos_ = 0;
};

class ContextItemIt : public ItemIterator {
 public:
  explicit ContextItemIt(const LazyFocus* focus) : focus_(focus) {}
  Status Reset(DynamicContext* ctx) override {
    ctx_ = ctx;
    done_ = false;
    return Status::OK();
  }
  Result<bool> Next(Item* out) override {
    if (done_) return false;
    done_ = true;
    if (focus_ != nullptr && focus_->valid) {
      *out = focus_->item;
      return true;
    }
    if (ctx_->initial_context != nullptr) {
      XQP_ASSIGN_OR_RETURN(const Item* item, ctx_->initial_context->Get(0));
      if (item != nullptr) {
        *out = *item;
        return true;
      }
    }
    return Status::DynamicError("context item is not defined");
  }

 private:
  const LazyFocus* focus_;
  DynamicContext* ctx_ = nullptr;
  bool done_ = false;
};

class RootIt : public ItemIterator {
 public:
  explicit RootIt(const LazyFocus* focus) : inner_(focus) {}
  Status Reset(DynamicContext* ctx) override { return inner_.Reset(ctx); }
  Result<bool> Next(Item* out) override {
    Item item;
    XQP_ASSIGN_OR_RETURN(bool got, inner_.Next(&item));
    if (!got) return false;
    if (!item.IsNode()) {
      return Status::TypeError("leading '/' requires a node context item");
    }
    *out = Item(item.AsNode().Root());
    return true;
  }

 private:
  ContextItemIt inner_;
};

/// Lazy concatenation (the comma operator).
class SequenceIt : public ItemIterator {
 public:
  explicit SequenceIt(std::vector<std::unique_ptr<ItemIterator>> children)
      : children_(std::move(children)) {}
  Status Reset(DynamicContext* ctx) override {
    ctx_ = ctx;
    current_ = 0;
    if (!children_.empty()) {
      XQP_RETURN_NOT_OK(children_[0]->Reset(ctx));
    }
    return Status::OK();
  }
  Result<bool> Next(Item* out) override {
    while (current_ < children_.size()) {
      XQP_ASSIGN_OR_RETURN(bool got, children_[current_]->Next(out));
      if (got) return true;
      ++current_;
      if (current_ < children_.size()) {
        XQP_RETURN_NOT_OK(children_[current_]->Reset(ctx_));
      }
    }
    return false;
  }

 private:
  std::vector<std::unique_ptr<ItemIterator>> children_;
  DynamicContext* ctx_ = nullptr;
  size_t current_ = 0;
};

class RangeIt : public ItemIterator {
 public:
  RangeIt(std::unique_ptr<ItemIterator> lo, std::unique_ptr<ItemIterator> hi)
      : lo_(std::move(lo)), hi_(std::move(hi)) {}
  Status Reset(DynamicContext* ctx) override {
    XQP_RETURN_NOT_OK(lo_->Reset(ctx));
    XQP_RETURN_NOT_OK(hi_->Reset(ctx));
    started_ = false;
    empty_ = false;
    return Status::OK();
  }
  Result<bool> Next(Item* out) override {
    if (!started_) {
      started_ = true;
      XQP_ASSIGN_OR_RETURN(Sequence lo, Drain(lo_.get()));
      XQP_ASSIGN_OR_RETURN(Sequence hi, Drain(hi_.get()));
      if (lo.empty() || hi.empty()) {
        empty_ = true;
        return false;
      }
      if (lo.size() != 1 || hi.size() != 1) {
        return Status::TypeError("range operands must be singletons");
      }
      XQP_ASSIGN_OR_RETURN(AtomicValue lv,
                           lo[0].Atomized().CastTo(XsType::kInteger));
      XQP_ASSIGN_OR_RETURN(AtomicValue hv,
                           hi[0].Atomized().CastTo(XsType::kInteger));
      next_ = lv.AsInt();
      end_ = hv.AsInt();
    }
    if (empty_ || next_ > end_) return false;
    *out = Item(AtomicValue::Integer(next_++));
    return true;
  }

 private:
  std::unique_ptr<ItemIterator> lo_, hi_;
  bool started_ = false;
  bool empty_ = false;
  int64_t next_ = 0, end_ = -1;
};

// ---------------------------------------------------------------------------
// Single-shot wrappers (materialize operands, emit a small result)
// ---------------------------------------------------------------------------

/// Base for operators producing a whole (small) sequence computed on first
/// Next.
class ComputeOnceIt : public ItemIterator {
 public:
  Status Reset(DynamicContext* ctx) override {
    ctx_ = ctx;
    computed_ = false;
    pos_ = 0;
    return ResetChildren(ctx);
  }
  Result<bool> Next(Item* out) override {
    if (!computed_) {
      XQP_ASSIGN_OR_RETURN(result_, Compute());
      computed_ = true;
    }
    if (pos_ >= result_.size()) return false;
    *out = result_[pos_++];
    return true;
  }

 protected:
  virtual Status ResetChildren(DynamicContext* ctx) = 0;
  virtual Result<Sequence> Compute() = 0;
  DynamicContext* ctx_ = nullptr;

 private:
  bool computed_ = false;
  Sequence result_;
  size_t pos_ = 0;
};

class ArithmeticIt : public ComputeOnceIt {
 public:
  ArithmeticIt(ArithOp op, std::unique_ptr<ItemIterator> lhs,
               std::unique_ptr<ItemIterator> rhs)
      : op_(op), lhs_(std::move(lhs)), rhs_(std::move(rhs)) {}

 protected:
  Status ResetChildren(DynamicContext* ctx) override {
    XQP_RETURN_NOT_OK(lhs_->Reset(ctx));
    return rhs_->Reset(ctx);
  }
  Result<Sequence> Compute() override {
    XQP_ASSIGN_OR_RETURN(Sequence lhs, Drain(lhs_.get()));
    XQP_ASSIGN_OR_RETURN(Sequence rhs, Drain(rhs_.get()));
    return EvalArithmetic(op_, Atomize(lhs), Atomize(rhs));
  }

 private:
  ArithOp op_;
  std::unique_ptr<ItemIterator> lhs_, rhs_;
};

class UnaryIt : public ComputeOnceIt {
 public:
  UnaryIt(bool negate, std::unique_ptr<ItemIterator> operand)
      : negate_(negate), operand_(std::move(operand)) {}

 protected:
  Status ResetChildren(DynamicContext* ctx) override {
    return operand_->Reset(ctx);
  }
  Result<Sequence> Compute() override {
    XQP_ASSIGN_OR_RETURN(Sequence v, Drain(operand_.get()));
    return EvalUnary(negate_, Atomize(v));
  }

 private:
  bool negate_;
  std::unique_ptr<ItemIterator> operand_;
};

class ComparisonIt : public ComputeOnceIt {
 public:
  ComparisonIt(CompOp op, std::unique_ptr<ItemIterator> lhs,
               std::unique_ptr<ItemIterator> rhs)
      : op_(op), lhs_(std::move(lhs)), rhs_(std::move(rhs)) {}

 protected:
  Status ResetChildren(DynamicContext* ctx) override {
    XQP_RETURN_NOT_OK(lhs_->Reset(ctx));
    return rhs_->Reset(ctx);
  }
  Result<Sequence> Compute() override {
    XQP_ASSIGN_OR_RETURN(Sequence lhs, Drain(lhs_.get()));
    XQP_ASSIGN_OR_RETURN(Sequence rhs, Drain(rhs_.get()));
    if (IsValueComp(op_)) {
      return EvalValueComparison(op_, Atomize(lhs), Atomize(rhs));
    }
    if (IsGeneralComp(op_)) {
      XQP_ASSIGN_OR_RETURN(bool b,
                           EvalGeneralComparison(op_, Atomize(lhs), Atomize(rhs)));
      return Sequence{Item(AtomicValue::Boolean(b))};
    }
    return EvalNodeComparison(op_, lhs, rhs);
  }

 private:
  CompOp op_;
  std::unique_ptr<ItemIterator> lhs_, rhs_;
};

class LogicalIt : public ItemIterator {
 public:
  LogicalIt(bool is_and, std::unique_ptr<ItemIterator> lhs,
            std::unique_ptr<ItemIterator> rhs)
      : is_and_(is_and), lhs_(std::move(lhs)), rhs_(std::move(rhs)) {}
  Status Reset(DynamicContext* ctx) override {
    XQP_RETURN_NOT_OK(lhs_->Reset(ctx));
    XQP_RETURN_NOT_OK(rhs_->Reset(ctx));
    done_ = false;
    return Status::OK();
  }
  Result<bool> Next(Item* out) override {
    if (done_) return false;
    done_ = true;
    XQP_ASSIGN_OR_RETURN(bool lv, StreamingEbv(lhs_.get()));
    bool value;
    if (is_and_ && !lv) {
      value = false;  // Short-circuit: rhs never evaluated (lazy).
    } else if (!is_and_ && lv) {
      value = true;
    } else {
      XQP_ASSIGN_OR_RETURN(value, StreamingEbv(rhs_.get()));
    }
    *out = Item(AtomicValue::Boolean(value));
    return true;
  }

 private:
  bool is_and_;
  std::unique_ptr<ItemIterator> lhs_, rhs_;
  bool done_ = false;
};

class IfIt : public ItemIterator {
 public:
  IfIt(std::unique_ptr<ItemIterator> cond, std::unique_ptr<ItemIterator> then_i,
       std::unique_ptr<ItemIterator> else_i)
      : cond_(std::move(cond)),
        then_(std::move(then_i)),
        else_(std::move(else_i)) {}
  Status Reset(DynamicContext* ctx) override {
    ctx_ = ctx;
    XQP_RETURN_NOT_OK(cond_->Reset(ctx));
    chosen_ = nullptr;
    return Status::OK();
  }
  Result<bool> Next(Item* out) override {
    if (chosen_ == nullptr) {
      XQP_ASSIGN_OR_RETURN(bool b, StreamingEbv(cond_.get()));
      chosen_ = b ? then_.get() : else_.get();
      XQP_RETURN_NOT_OK(chosen_->Reset(ctx_));
    }
    return chosen_->Next(out);
  }

 private:
  std::unique_ptr<ItemIterator> cond_, then_, else_;
  DynamicContext* ctx_ = nullptr;
  ItemIterator* chosen_ = nullptr;
};

class CastIt : public ComputeOnceIt {
 public:
  CastIt(const CastExpr* e, std::unique_ptr<ItemIterator> operand)
      : e_(e), operand_(std::move(operand)) {}

 protected:
  Status ResetChildren(DynamicContext* ctx) override {
    return operand_->Reset(ctx);
  }
  Result<Sequence> Compute() override {
    XQP_ASSIGN_OR_RETURN(Sequence v, Drain(operand_.get()));
    Sequence atomized = Atomize(v);
    if (atomized.empty()) {
      if (e_->optional) return Sequence{};
      return Status::TypeError("cast of empty sequence to non-optional type");
    }
    if (atomized.size() != 1) {
      return Status::TypeError("cast requires a singleton");
    }
    XQP_ASSIGN_OR_RETURN(AtomicValue out,
                         atomized[0].AsAtomic().CastTo(e_->target));
    return Sequence{Item(std::move(out))};
  }

 private:
  const CastExpr* e_;
  std::unique_ptr<ItemIterator> operand_;
};

class CastableIt : public ComputeOnceIt {
 public:
  CastableIt(const CastableExpr* e, std::unique_ptr<ItemIterator> operand)
      : e_(e), operand_(std::move(operand)) {}

 protected:
  Status ResetChildren(DynamicContext* ctx) override {
    return operand_->Reset(ctx);
  }
  Result<Sequence> Compute() override {
    XQP_ASSIGN_OR_RETURN(Sequence v, Drain(operand_.get()));
    Sequence atomized = Atomize(v);
    bool ok;
    if (atomized.empty()) {
      ok = e_->optional;
    } else if (atomized.size() != 1) {
      ok = false;
    } else {
      ok = atomized[0].AsAtomic().CastTo(e_->target).ok();
    }
    return Sequence{Item(AtomicValue::Boolean(ok))};
  }

 private:
  const CastableExpr* e_;
  std::unique_ptr<ItemIterator> operand_;
};

class InstanceOfIt : public ComputeOnceIt {
 public:
  InstanceOfIt(const InstanceOfExpr* e, std::unique_ptr<ItemIterator> operand)
      : e_(e), operand_(std::move(operand)) {}

 protected:
  Status ResetChildren(DynamicContext* ctx) override {
    return operand_->Reset(ctx);
  }
  Result<Sequence> Compute() override {
    XQP_ASSIGN_OR_RETURN(Sequence v, Drain(operand_.get()));
    return Sequence{Item(AtomicValue::Boolean(MatchesSequenceType(v, e_->type)))};
  }

 private:
  const InstanceOfExpr* e_;
  std::unique_ptr<ItemIterator> operand_;
};

/// treat-as streams through, validating items on the fly.
class TreatIt : public ItemIterator {
 public:
  TreatIt(const TreatExpr* e, std::unique_ptr<ItemIterator> operand)
      : e_(e), operand_(std::move(operand)) {}
  Status Reset(DynamicContext* ctx) override {
    count_ = 0;
    return operand_->Reset(ctx);
  }
  Result<bool> Next(Item* out) override {
    XQP_ASSIGN_OR_RETURN(bool got, operand_->Next(out));
    const SequenceType& t = e_->type;
    if (!got) {
      if (count_ == 0 && !t.empty_sequence &&
          (t.occurrence == Occurrence::kOne ||
           t.occurrence == Occurrence::kPlus)) {
        return Status::TypeError("treat as " + t.ToString() +
                                 ": empty sequence");
      }
      return false;
    }
    ++count_;
    if (t.empty_sequence) {
      return Status::TypeError("treat as empty-sequence(): non-empty input");
    }
    if (count_ > 1 && (t.occurrence == Occurrence::kOne ||
                       t.occurrence == Occurrence::kOptional)) {
      return Status::TypeError("treat as " + t.ToString() +
                               ": more than one item");
    }
    if (!MatchesItemType(*out, t.item)) {
      return Status::TypeError("treat as " + t.ToString() +
                               ": item type mismatch");
    }
    return true;
  }

 private:
  const TreatExpr* e_;
  std::unique_ptr<ItemIterator> operand_;
  size_t count_ = 0;
};

class UnionIt : public ComputeOnceIt {
 public:
  UnionIt(const Expr* e, std::unique_ptr<ItemIterator> lhs,
          std::unique_ptr<ItemIterator> rhs)
      : e_(e), lhs_(std::move(lhs)), rhs_(std::move(rhs)) {}

 protected:
  Status ResetChildren(DynamicContext* ctx) override {
    XQP_RETURN_NOT_OK(lhs_->Reset(ctx));
    return rhs_->Reset(ctx);
  }
  Result<Sequence> Compute() override {
    XQP_ASSIGN_OR_RETURN(Sequence lhs, Drain(lhs_.get()));
    XQP_ASSIGN_OR_RETURN(Sequence rhs, Drain(rhs_.get()));
    if (e_->kind() == ExprKind::kUnion) {
      lhs.insert(lhs.end(), rhs.begin(), rhs.end());
      XQP_RETURN_NOT_OK(SortDocOrderDistinct(&lhs));
      return lhs;
    }
    bool is_except = static_cast<const IntersectExceptExpr*>(e_)->is_except;
    XQP_RETURN_NOT_OK(SortDocOrderDistinct(&lhs));
    XQP_RETURN_NOT_OK(SortDocOrderDistinct(&rhs));
    Sequence out;
    for (const Item& item : lhs) {
      bool in_rhs = false;
      for (const Item& r : rhs) {
        if (item.AsNode().SameNode(r.AsNode())) {
          in_rhs = true;
          break;
        }
      }
      if (in_rhs != is_except) out.push_back(item);
    }
    return out;
  }

 private:
  const Expr* e_;
  std::unique_ptr<ItemIterator> lhs_, rhs_;
};

class TypeswitchIt : public ItemIterator {
 public:
  TypeswitchIt(const TypeswitchExpr* e,
               std::vector<std::unique_ptr<ItemIterator>> children)
      : e_(e), children_(std::move(children)) {}
  Status Reset(DynamicContext* ctx) override {
    ctx_ = ctx;
    chosen_ = nullptr;
    return children_[0]->Reset(ctx);
  }
  Result<bool> Next(Item* out) override {
    if (chosen_ == nullptr) {
      XQP_ASSIGN_OR_RETURN(Sequence operand, Drain(children_[0].get()));
      size_t branch = e_->NumChildren() - 1;
      int slot = e_->default_var_slot;
      for (size_t i = 0; i < e_->cases.size(); ++i) {
        if (MatchesSequenceType(operand, e_->cases[i].type)) {
          branch = i + 1;
          slot = e_->cases[i].var_slot;
          break;
        }
      }
      if (slot >= 0) {
        ctx_->slots[slot] = LazySeq::FromVector(std::move(operand));
      }
      chosen_ = children_[branch].get();
      XQP_RETURN_NOT_OK(chosen_->Reset(ctx_));
    }
    return chosen_->Next(out);
  }

 private:
  const TypeswitchExpr* e_;
  std::vector<std::unique_ptr<ItemIterator>> children_;
  DynamicContext* ctx_ = nullptr;
  ItemIterator* chosen_ = nullptr;
};

// ---------------------------------------------------------------------------
// Function calls
// ---------------------------------------------------------------------------

class FunctionCallIt : public ItemIterator {
 public:
  FunctionCallIt(const FunctionCallExpr* e, const LazyFocus* focus,
                 std::vector<std::unique_ptr<ItemIterator>> args)
      : e_(e), focus_(focus), args_(std::move(args)) {}

  ~FunctionCallIt() override { ReleaseDepth(); }

  Status Reset(DynamicContext* ctx) override {
    ReleaseDepth();
    ctx_ = ctx;
    state_ = State::kInit;
    pos_ = 0;
    result_.clear();
    body_.reset();
    for (auto& a : args_) {
      XQP_RETURN_NOT_OK(a->Reset(ctx));
    }
    return Status::OK();
  }

  Result<bool> Next(Item* out) override {
    if (state_ == State::kInit) {
      XQP_RETURN_NOT_OK(Prepare());
    }
    if (state_ == State::kUserStreaming) {
      // Swap our frame in around every pull so the lazily evaluated body
      // sees its own bindings even while outer iterators interleave.
      std::swap(ctx_->slots, frame_);
      auto got = body_->Next(out);
      std::swap(ctx_->slots, frame_);
      return got;
    }
    if (pos_ >= result_.size()) return false;
    *out = result_[pos_++];
    return true;
  }

 private:
  enum class State { kInit, kMaterialized, kUserStreaming };

  Status Prepare() {
    if (e_->user_index >= 0) return PrepareUser();
    Builtin id = static_cast<Builtin>(e_->builtin);
    // Short-circuiting builtins: pull only what is needed (lazy evaluation;
    // the paper's endlessOnes() example relies on this).
    switch (id) {
      case Builtin::kEmpty:
      case Builtin::kExists: {
        Item scratch;
        XQP_ASSIGN_OR_RETURN(bool got, args_[0]->Next(&scratch));
        bool value = id == Builtin::kEmpty ? !got : got;
        result_ = {Item(AtomicValue::Boolean(value))};
        state_ = State::kMaterialized;
        return Status::OK();
      }
      case Builtin::kHead: {
        Item first;
        XQP_ASSIGN_OR_RETURN(bool got, args_[0]->Next(&first));
        if (got) result_ = {std::move(first)};
        state_ = State::kMaterialized;
        return Status::OK();
      }
      case Builtin::kBoolean:
      case Builtin::kNot: {
        XQP_ASSIGN_OR_RETURN(bool b, StreamingEbv(args_[0].get()));
        if (id == Builtin::kNot) b = !b;
        result_ = {Item(AtomicValue::Boolean(b))};
        state_ = State::kMaterialized;
        return Status::OK();
      }
      case Builtin::kCount: {
        // Streams without buffering items.
        int64_t n = 0;
        Item scratch;
        while (true) {
          XQP_ASSIGN_OR_RETURN(bool got, args_[0]->Next(&scratch));
          if (!got) break;
          ++n;
        }
        result_ = {Item(AtomicValue::Integer(n))};
        state_ = State::kMaterialized;
        return Status::OK();
      }
      default:
        break;
    }
    std::vector<Sequence> args;
    args.reserve(args_.size());
    for (auto& a : args_) {
      XQP_ASSIGN_OR_RETURN(Sequence arg, Drain(a.get()));
      args.push_back(std::move(arg));
    }
    FocusInfo focus;
    if (focus_ != nullptr && focus_->valid) {
      focus.has_focus = true;
      focus.item = focus_->item;
      focus.position = focus_->position;
      if (focus_->size < 0 && id == Builtin::kLast) {
        // The uses_last analysis makes the enclosing path/filter
        // materialize its input; reaching this means it could not.
        return Status::DynamicError(
            "last() requires a materialized context sequence");
      }
      focus.size = focus_->size;
    }
    XQP_ASSIGN_OR_RETURN(result_, CallBuiltin(id, args, ctx_, focus));
    state_ = State::kMaterialized;
    return Status::OK();
  }

  Status PrepareUser() {
    const UserFunction& fn = ctx_->module->functions[e_->user_index];
    if (fn.body == nullptr) {
      return Status::DynamicError("external function has no implementation: " +
                                  fn.name.Lexical());
    }
    if (ctx_->call_depth >= DynamicContext::kMaxCallDepth) {
      return Status::DynamicError("maximum recursion depth exceeded in " +
                                  fn.name.Lexical());
    }
    frame_.assign(fn.num_slots, nullptr);
    for (size_t i = 0; i < args_.size(); ++i) {
      XQP_ASSIGN_OR_RETURN(Sequence arg, Drain(args_[i].get()));
      if (!MatchesSequenceType(arg, fn.param_types[i])) {
        return Status::TypeError(
            "argument " + std::to_string(i + 1) + " of " + fn.name.Lexical() +
            " does not match " + fn.param_types[i].ToString());
      }
      frame_[fn.param_slots[i]] = LazySeq::FromVector(std::move(arg));
    }
    // Compile the body once per call site, on demand, with no focus. The
    // recursion-depth slot stays held while the body streams. Runtime
    // compilation happens outside OpenLazy's wrap scope, so re-derive the
    // profiling gate from the active context.
    ProfileWrapScope wrap(ctx_->profile != nullptr);
    XQP_ASSIGN_OR_RETURN(body_, CompileIterator(fn.body.get(), nullptr));
    ++ctx_->call_depth;
    depth_held_ = true;
    std::swap(ctx_->slots, frame_);
    Status st = body_->Reset(ctx_);
    std::swap(ctx_->slots, frame_);
    XQP_RETURN_NOT_OK(st);
    state_ = State::kUserStreaming;
    return Status::OK();
  }

  void ReleaseDepth() {
    if (depth_held_ && ctx_ != nullptr) {
      --ctx_->call_depth;
      depth_held_ = false;
    }
  }

  const FunctionCallExpr* e_;
  const LazyFocus* focus_;
  std::vector<std::unique_ptr<ItemIterator>> args_;
  DynamicContext* ctx_ = nullptr;
  State state_ = State::kInit;
  Sequence result_;
  size_t pos_ = 0;
  std::unique_ptr<ItemIterator> body_;
  std::vector<LazySeqPtr> frame_;
  bool depth_held_ = false;
};

// ---------------------------------------------------------------------------
// Constructors (materialization points by nature)
// ---------------------------------------------------------------------------

class CtorIt : public ComputeOnceIt {
 public:
  CtorIt(const Expr* e, const LazyFocus* focus) : e_(e), focus_(focus) {}

  Status Init() {
    for (size_t i = 0; i < e_->NumChildren(); ++i) {
      XQP_ASSIGN_OR_RETURN(std::unique_ptr<ItemIterator> child,
                           CompileIterator(e_->child(i), focus_));
      children_.push_back(std::move(child));
    }
    return Status::OK();
  }

 protected:
  Status ResetChildren(DynamicContext* ctx) override {
    for (auto& c : children_) {
      XQP_RETURN_NOT_OK(c->Reset(ctx));
    }
    return Status::OK();
  }

  Result<Sequence> Compute() override {
    std::vector<Sequence> parts;
    parts.reserve(children_.size());
    for (auto& c : children_) {
      XQP_ASSIGN_OR_RETURN(Sequence part, Drain(c.get()));
      parts.push_back(std::move(part));
    }
    switch (e_->kind()) {
      case ExprKind::kElementCtor: {
        const auto* ctor = static_cast<const ElementCtorExpr*>(e_);
        QName name = ctor->name;
        size_t start = 0;
        if (ctor->computed_name) {
          XQP_ASSIGN_OR_RETURN(name, ComputedName(parts[0]));
          start = 1;
        }
        std::vector<Sequence> content(
            std::make_move_iterator(parts.begin() + start),
            std::make_move_iterator(parts.end()));
        XQP_ASSIGN_OR_RETURN(
            Item item, construct::Element(name, ctor->ns_decls, content, ctx_));
        return Sequence{std::move(item)};
      }
      case ExprKind::kAttributeCtor: {
        const auto* ctor = static_cast<const AttributeCtorExpr*>(e_);
        QName name = ctor->name;
        size_t start = 0;
        if (ctor->computed_name) {
          XQP_ASSIGN_OR_RETURN(name, ComputedName(parts[0]));
          start = 1;
        }
        std::vector<Sequence> content(
            std::make_move_iterator(parts.begin() + start),
            std::make_move_iterator(parts.end()));
        XQP_ASSIGN_OR_RETURN(Item item,
                             construct::Attribute(name, content, ctx_));
        return Sequence{std::move(item)};
      }
      case ExprKind::kTextCtor:
        return construct::Text(parts[0], ctx_);
      case ExprKind::kCommentCtor: {
        XQP_ASSIGN_OR_RETURN(Item item, construct::Comment(parts[0], ctx_));
        return Sequence{std::move(item)};
      }
      case ExprKind::kPiCtor: {
        const auto* pi = static_cast<const PiCtorExpr*>(e_);
        XQP_ASSIGN_OR_RETURN(Item item,
                             construct::Pi(pi->target, parts[0], ctx_));
        return Sequence{std::move(item)};
      }
      case ExprKind::kDocumentCtor: {
        XQP_ASSIGN_OR_RETURN(Item item, construct::DocumentNode(parts, ctx_));
        return Sequence{std::move(item)};
      }
      default:
        return Status::Internal("not a constructor");
    }
  }

 private:
  const Expr* e_;
  const LazyFocus* focus_;
  std::vector<std::unique_ptr<ItemIterator>> children_;
};

}  // namespace

/// try/catch: the try branch must be fully evaluated before any item can be
/// emitted (an error after partial output would be uncatchable), so it is a
/// materialization point; the catch branch streams.
class TryCatchIt : public ItemIterator {
 public:
  TryCatchIt(std::unique_ptr<ItemIterator> try_it,
             std::unique_ptr<ItemIterator> catch_it)
      : try_(std::move(try_it)), catch_(std::move(catch_it)) {}

  Status Reset(DynamicContext* ctx) override {
    ctx_ = ctx;
    state_ = State::kInit;
    pos_ = 0;
    buffer_.clear();
    return try_->Reset(ctx);
  }

  Result<bool> Next(Item* out) override {
    if (state_ == State::kInit) {
      auto attempt = Drain(try_.get());
      if (attempt.ok()) {
        buffer_ = std::move(attempt).value();
        state_ = State::kBuffered;
      } else {
        StatusCode code = attempt.status().code();
        if (code != StatusCode::kDynamicError &&
            code != StatusCode::kTypeError) {
          return attempt.status();
        }
        XQP_RETURN_NOT_OK(catch_->Reset(ctx_));
        state_ = State::kCatching;
      }
    }
    if (state_ == State::kCatching) return catch_->Next(out);
    if (pos_ >= buffer_.size()) return false;
    *out = buffer_[pos_++];
    return true;
  }

 private:
  enum class State { kInit, kBuffered, kCatching };
  std::unique_ptr<ItemIterator> try_, catch_;
  DynamicContext* ctx_ = nullptr;
  State state_ = State::kInit;
  Sequence buffer_;
  size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Compiler dispatch
// ---------------------------------------------------------------------------

namespace {

/// Decorator recording Next() pulls, items produced, and inclusive wall
/// time into the run's QueryProfile. Only ever instantiated when a profiled
/// compilation requested it (tls_profile_wrap), so unprofiled plans carry
/// zero overhead.
class ProfileIt : public ItemIterator {
 public:
  ProfileIt(const Expr* e, std::unique_ptr<ItemIterator> inner)
      : e_(e), inner_(std::move(inner)) {}

  Status Reset(DynamicContext* ctx) override {
    if (ctx->profile != profile_) {
      profile_ = ctx->profile;
      stats_ = profile_ == nullptr ? nullptr : profile_->StatsFor(e_);
    }
    if (stats_ != nullptr) ++stats_->resets;
    return inner_->Reset(ctx);
  }

  Result<bool> Next(Item* out) override {
    if (stats_ == nullptr) return inner_->Next(out);
    const auto start = std::chrono::steady_clock::now();
    Result<bool> got = inner_->Next(out);
    const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now() - start)
                        .count();
    stats_->wall_ns += ns < 0 ? 0 : uint64_t(ns);
    ++stats_->next_calls;
    if (got.ok() && got.value()) ++stats_->items;
    return got;
  }

 private:
  const Expr* e_;
  std::unique_ptr<ItemIterator> inner_;
  QueryProfile* profile_ = nullptr;
  OpStats* stats_ = nullptr;
};

Result<std::unique_ptr<ItemIterator>> CompileIteratorImpl(
    const Expr* e, const LazyFocus* focus) {
  switch (e->kind()) {
    case ExprKind::kLiteral:
      return std::unique_ptr<ItemIterator>(
          std::make_unique<LiteralIt>(static_cast<const LiteralExpr*>(e)->value));
    case ExprKind::kVarRef:
      return std::unique_ptr<ItemIterator>(
          std::make_unique<VarRefIt>(static_cast<const VarRefExpr*>(e)));
    case ExprKind::kContextItem:
      return std::unique_ptr<ItemIterator>(
          std::make_unique<ContextItemIt>(focus));
    case ExprKind::kRoot:
      return std::unique_ptr<ItemIterator>(std::make_unique<RootIt>(focus));
    case ExprKind::kSequence: {
      std::vector<std::unique_ptr<ItemIterator>> children;
      for (size_t i = 0; i < e->NumChildren(); ++i) {
        XQP_ASSIGN_OR_RETURN(std::unique_ptr<ItemIterator> c,
                             CompileIterator(e->child(i), focus));
        children.push_back(std::move(c));
      }
      return std::unique_ptr<ItemIterator>(
          std::make_unique<SequenceIt>(std::move(children)));
    }
    case ExprKind::kRange: {
      XQP_ASSIGN_OR_RETURN(auto lo, CompileIterator(e->child(0), focus));
      XQP_ASSIGN_OR_RETURN(auto hi, CompileIterator(e->child(1), focus));
      return std::unique_ptr<ItemIterator>(
          std::make_unique<RangeIt>(std::move(lo), std::move(hi)));
    }
    case ExprKind::kArithmetic: {
      XQP_ASSIGN_OR_RETURN(auto lhs, CompileIterator(e->child(0), focus));
      XQP_ASSIGN_OR_RETURN(auto rhs, CompileIterator(e->child(1), focus));
      return std::unique_ptr<ItemIterator>(std::make_unique<ArithmeticIt>(
          static_cast<const ArithmeticExpr*>(e)->op, std::move(lhs),
          std::move(rhs)));
    }
    case ExprKind::kUnary: {
      XQP_ASSIGN_OR_RETURN(auto operand, CompileIterator(e->child(0), focus));
      return std::unique_ptr<ItemIterator>(std::make_unique<UnaryIt>(
          static_cast<const UnaryExpr*>(e)->negate, std::move(operand)));
    }
    case ExprKind::kComparison: {
      XQP_ASSIGN_OR_RETURN(auto lhs, CompileIterator(e->child(0), focus));
      XQP_ASSIGN_OR_RETURN(auto rhs, CompileIterator(e->child(1), focus));
      return std::unique_ptr<ItemIterator>(std::make_unique<ComparisonIt>(
          static_cast<const ComparisonExpr*>(e)->op, std::move(lhs),
          std::move(rhs)));
    }
    case ExprKind::kLogical: {
      XQP_ASSIGN_OR_RETURN(auto lhs, CompileIterator(e->child(0), focus));
      XQP_ASSIGN_OR_RETURN(auto rhs, CompileIterator(e->child(1), focus));
      return std::unique_ptr<ItemIterator>(std::make_unique<LogicalIt>(
          static_cast<const LogicalExpr*>(e)->is_and, std::move(lhs),
          std::move(rhs)));
    }
    case ExprKind::kIf: {
      XQP_ASSIGN_OR_RETURN(auto cond, CompileIterator(e->child(0), focus));
      XQP_ASSIGN_OR_RETURN(auto then_i, CompileIterator(e->child(1), focus));
      XQP_ASSIGN_OR_RETURN(auto else_i, CompileIterator(e->child(2), focus));
      return std::unique_ptr<ItemIterator>(std::make_unique<IfIt>(
          std::move(cond), std::move(then_i), std::move(else_i)));
    }
    case ExprKind::kCastAs: {
      XQP_ASSIGN_OR_RETURN(auto operand, CompileIterator(e->child(0), focus));
      return std::unique_ptr<ItemIterator>(std::make_unique<CastIt>(
          static_cast<const CastExpr*>(e), std::move(operand)));
    }
    case ExprKind::kCastableAs: {
      XQP_ASSIGN_OR_RETURN(auto operand, CompileIterator(e->child(0), focus));
      return std::unique_ptr<ItemIterator>(std::make_unique<CastableIt>(
          static_cast<const CastableExpr*>(e), std::move(operand)));
    }
    case ExprKind::kInstanceOf: {
      XQP_ASSIGN_OR_RETURN(auto operand, CompileIterator(e->child(0), focus));
      return std::unique_ptr<ItemIterator>(std::make_unique<InstanceOfIt>(
          static_cast<const InstanceOfExpr*>(e), std::move(operand)));
    }
    case ExprKind::kTreatAs: {
      XQP_ASSIGN_OR_RETURN(auto operand, CompileIterator(e->child(0), focus));
      return std::unique_ptr<ItemIterator>(std::make_unique<TreatIt>(
          static_cast<const TreatExpr*>(e), std::move(operand)));
    }
    case ExprKind::kUnion:
    case ExprKind::kIntersectExcept: {
      XQP_ASSIGN_OR_RETURN(auto lhs, CompileIterator(e->child(0), focus));
      XQP_ASSIGN_OR_RETURN(auto rhs, CompileIterator(e->child(1), focus));
      return std::unique_ptr<ItemIterator>(
          std::make_unique<UnionIt>(e, std::move(lhs), std::move(rhs)));
    }
    case ExprKind::kTypeswitch: {
      std::vector<std::unique_ptr<ItemIterator>> children;
      for (size_t i = 0; i < e->NumChildren(); ++i) {
        XQP_ASSIGN_OR_RETURN(std::unique_ptr<ItemIterator> c,
                             CompileIterator(e->child(i), focus));
        children.push_back(std::move(c));
      }
      return std::unique_ptr<ItemIterator>(std::make_unique<TypeswitchIt>(
          static_cast<const TypeswitchExpr*>(e), std::move(children)));
    }
    case ExprKind::kFunctionCall: {
      std::vector<std::unique_ptr<ItemIterator>> args;
      for (size_t i = 0; i < e->NumChildren(); ++i) {
        XQP_ASSIGN_OR_RETURN(std::unique_ptr<ItemIterator> a,
                             CompileIterator(e->child(i), focus));
        args.push_back(std::move(a));
      }
      return std::unique_ptr<ItemIterator>(std::make_unique<FunctionCallIt>(
          static_cast<const FunctionCallExpr*>(e), focus, std::move(args)));
    }
    case ExprKind::kElementCtor:
    case ExprKind::kAttributeCtor:
    case ExprKind::kTextCtor:
    case ExprKind::kCommentCtor:
    case ExprKind::kPiCtor:
    case ExprKind::kDocumentCtor: {
      auto ctor = std::make_unique<CtorIt>(e, focus);
      XQP_RETURN_NOT_OK(ctor->Init());
      return std::unique_ptr<ItemIterator>(std::move(ctor));
    }
    case ExprKind::kTryCatch: {
      XQP_ASSIGN_OR_RETURN(auto try_it, CompileIterator(e->child(0), focus));
      XQP_ASSIGN_OR_RETURN(auto catch_it, CompileIterator(e->child(1), focus));
      return std::unique_ptr<ItemIterator>(std::make_unique<TryCatchIt>(
          std::move(try_it), std::move(catch_it)));
    }
    case ExprKind::kPath:
      return CompilePath(static_cast<const PathExpr*>(e), focus);
    case ExprKind::kStep:
      return CompileStep(static_cast<const StepExpr*>(e), focus);
    case ExprKind::kFilter:
      return CompileFilter(static_cast<const FilterExpr*>(e), focus);
    case ExprKind::kFlwor:
      return CompileFlwor(static_cast<const FlworExpr*>(e), focus);
    case ExprKind::kQuantified:
      return CompileQuantified(static_cast<const QuantifiedExpr*>(e), focus);
  }
  return Status::Internal("unhandled expression kind in lazy compiler");
}

}  // namespace

Result<std::unique_ptr<ItemIterator>> CompileIterator(const Expr* e,
                                                      const LazyFocus* focus) {
  XQP_ASSIGN_OR_RETURN(std::unique_ptr<ItemIterator> it,
                       CompileIteratorImpl(e, focus));
  if (tls_profile_wrap) {
    return std::unique_ptr<ItemIterator>(
        std::make_unique<ProfileIt>(e, std::move(it)));
  }
  return it;
}

Result<std::unique_ptr<ItemIterator>> OpenLazy(const Expr* e,
                                               DynamicContext* ctx) {
  ProfileWrapScope wrap(ctx->profile != nullptr);
  XQP_ASSIGN_OR_RETURN(std::unique_ptr<ItemIterator> it,
                       CompileIterator(e, nullptr));
  XQP_RETURN_NOT_OK(it->Reset(ctx));
  return it;
}

Result<Sequence> ExecuteLazy(const Expr* e, DynamicContext* ctx) {
  XQP_ASSIGN_OR_RETURN(std::unique_ptr<ItemIterator> it, OpenLazy(e, ctx));
  return Drain(it.get());
}

}  // namespace xqp
