#include "exec/type_match.h"

namespace xqp {

bool MatchesItemType(const Item& item, const ItemTypeTest& test) {
  switch (test.kind) {
    case ItemTypeTest::Kind::kItem:
      return true;
    case ItemTypeTest::Kind::kNode:
      return item.IsNode();
    case ItemTypeTest::Kind::kText:
      return item.IsNode() && item.AsNode().kind() == NodeKind::kText;
    case ItemTypeTest::Kind::kComment:
      return item.IsNode() && item.AsNode().kind() == NodeKind::kComment;
    case ItemTypeTest::Kind::kPi:
      return item.IsNode() &&
             item.AsNode().kind() == NodeKind::kProcessingInstruction;
    case ItemTypeTest::Kind::kDocument:
      return item.IsNode() && item.AsNode().kind() == NodeKind::kDocument;
    case ItemTypeTest::Kind::kElement:
    case ItemTypeTest::Kind::kAttribute: {
      if (!item.IsNode()) return false;
      NodeKind want = test.kind == ItemTypeTest::Kind::kElement
                          ? NodeKind::kElement
                          : NodeKind::kAttribute;
      if (item.AsNode().kind() != want) return false;
      if (test.wildcard_name) return true;
      return item.AsNode().name() == test.name;
    }
    case ItemTypeTest::Kind::kAtomic: {
      if (!item.IsAtomic()) return false;
      XsType t = item.AsAtomic().type();
      if (t == test.atomic) return true;
      // Derived-type acceptance within the numeric tower: xs:integer is a
      // subtype of xs:decimal.
      if (test.atomic == XsType::kDecimal && t == XsType::kInteger) return true;
      return false;
    }
  }
  return false;
}

bool MatchesSequenceType(const Sequence& seq, const SequenceType& type) {
  if (type.empty_sequence) return seq.empty();
  switch (type.occurrence) {
    case Occurrence::kOne:
      if (seq.size() != 1) return false;
      break;
    case Occurrence::kOptional:
      if (seq.size() > 1) return false;
      break;
    case Occurrence::kPlus:
      if (seq.empty()) return false;
      break;
    case Occurrence::kStar:
      break;
  }
  for (const Item& item : seq) {
    if (!MatchesItemType(item, type.item)) return false;
  }
  return true;
}

}  // namespace xqp
