#ifndef XQP_EXEC_DYNAMIC_CONTEXT_H_
#define XQP_EXEC_DYNAMIC_CONTEXT_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "base/limits.h"
#include "base/parallel.h"
#include "exec/lazy_seq.h"
#include "query/expr.h"
#include "query/static_context.h"

namespace xqp {

class QueryProfile;
class DocumentIndexes;
class TagIndex;

/// Supplies documents and collections to fn:doc / fn:collection ("available
/// documents and collections" of the paper's dynamic context). The engine
/// provides an in-memory registry implementation.
class DocumentProvider {
 public:
  virtual ~DocumentProvider() = default;
  virtual Result<std::shared_ptr<const Document>> GetDocument(
      const std::string& uri) = 0;
  virtual Result<Sequence> GetCollection(const std::string& uri) = 0;
  /// Secondary index structures for `uri` (index/document_indexes.h), or
  /// nullptr when the provider does not maintain indexes — path evaluation
  /// then falls back to navigation/structural joins. The engine overrides
  /// this with the lazily built, cached IndexManager entry.
  virtual Result<std::shared_ptr<const DocumentIndexes>> GetDocumentIndexes(
      const std::string& uri) {
    (void)uri;
    return std::shared_ptr<const DocumentIndexes>();
  }
  /// Per-tag element posting lists for `uri` (join/tag_index.h), or nullptr
  /// when the provider does not maintain them — the structural-join access
  /// paths then decline to navigation. The engine overrides this with its
  /// cached, build-once entry.
  virtual Result<std::shared_ptr<const TagIndex>> GetTagIndex(
      const std::string& uri) {
    (void)uri;
    return std::shared_ptr<const TagIndex>();
  }
};

/// The dynamic (evaluation-time) context: variable frames, external
/// variable bindings, the initial context item, and document access.
class DynamicContext {
 public:
  DynamicContext() = default;

  /// Values of global variables, indexed by GlobalVariable::slot.
  std::vector<LazySeqPtr> globals;

  /// Current frame (main body or active function call).
  std::vector<LazySeqPtr> slots;

  /// Externally bound variables by expanded name — consulted when a global
  /// is declared "external".
  std::map<std::string, LazySeqPtr> external_variables;

  /// The initial context item ("." at the top level), if any.
  LazySeqPtr initial_context;

  /// Document access; may be null (fn:doc then errors).
  DocumentProvider* provider = nullptr;

  /// The module being evaluated (for user function lookup).
  const ParsedModule* module = nullptr;

  /// Guard against runaway recursion in user functions.
  int call_depth = 0;
  static constexpr int kMaxCallDepth = 4096;

  /// Parallel dispatch knobs, copied from EngineOptions at context setup:
  /// materialized node sequences at least this large route through the
  /// parallel sort/join kernels (0 disables), with `num_threads` workers
  /// (0 = DefaultParallelism()).
  size_t parallel_threshold = kDefaultParallelThreshold;
  int num_threads = 0;

  /// This run's resource governor, or null (the default) for ungoverned
  /// execution: iterators and the interpreter then pay one pointer test
  /// per check site. The engine owns the governor (stack or ResultStream);
  /// it outlives the context and every iterator compiled against it.
  ResourceGovernor* governor = nullptr;

  /// Per-operator statistics sink for this run, or null (the default) for
  /// unprofiled execution. When set, the lazy compiler wraps every iterator
  /// in a profiling decorator and the eager interpreter times every Eval;
  /// when null, neither engine pays more than a pointer test.
  QueryProfile* profile = nullptr;

  /// Access-path override for doc()-anchored chains, copied from
  /// EngineOptions at context setup. kAuto lets the cost model choose; a
  /// forced strategy that cannot answer a given chain degrades to
  /// navigation (results stay bit-identical across all settings).
  AccessPath force_access_path = AccessPath::kAuto;

  /// Counters the experiments report (node-id elision, buffer usage).
  struct Stats {
    uint64_t documents_built = 0;
    uint64_t nodes_constructed = 0;
    uint64_t items_produced = 0;
  };
  Stats stats;
};

/// RAII frame swap for user-function calls.
class FrameGuard {
 public:
  FrameGuard(DynamicContext* ctx, std::vector<LazySeqPtr> new_frame)
      : ctx_(ctx), saved_(std::move(ctx->slots)) {
    ctx_->slots = std::move(new_frame);
    ++ctx_->call_depth;
  }
  ~FrameGuard() {
    ctx_->slots = std::move(saved_);
    --ctx_->call_depth;
  }
  FrameGuard(const FrameGuard&) = delete;
  FrameGuard& operator=(const FrameGuard&) = delete;

 private:
  DynamicContext* ctx_;
  std::vector<LazySeqPtr> saved_;
};

}  // namespace xqp

#endif  // XQP_EXEC_DYNAMIC_CONTEXT_H_
