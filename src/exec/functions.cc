#include <cmath>
#include <unordered_set>

#include "base/string_util.h"
#include "exec/builtins.h"
#include "exec/compare.h"

namespace xqp {

namespace {

Status WrongArgs(const char* fn) {
  return Status::TypeError(std::string("invalid arguments to fn:") + fn);
}

/// Singleton string argument with ()-to-"" defaulting (fn:contains etc.).
Result<std::string> StringArg(const Sequence& seq, const char* fn) {
  if (seq.empty()) return std::string();
  if (seq.size() != 1) return WrongArgs(fn);
  return seq[0].Atomized().Lexical();
}

/// Optional-node argument with focus fallback (fn:name, fn:string, ...).
Result<Sequence> ArgOrFocus(std::vector<Sequence>& args,
                            const FocusInfo& focus, const char* fn) {
  if (!args.empty()) return args[0];
  if (!focus.has_focus) {
    return Status::DynamicError(std::string("fn:") + fn +
                                " with no argument requires a context item");
  }
  return Sequence{focus.item};
}

Result<double> NumericArg(const Item& item, const char* fn) {
  AtomicValue v = item.Atomized();
  if (v.type() == XsType::kUntypedAtomic) {
    XQP_ASSIGN_OR_RETURN(AtomicValue cast, v.CastTo(XsType::kDouble));
    return cast.AsRawDouble();
  }
  if (!v.IsNumeric()) return WrongArgs(fn);
  return v.NumericAsDouble();
}

/// Hash-set key for fn:distinct-values.
struct AtomicHash {
  size_t operator()(const AtomicValue& v) const { return v.Hash(); }
};
struct AtomicEq {
  bool operator()(const AtomicValue& a, const AtomicValue& b) const {
    return a.DeepEquals(b);
  }
};

bool DeepEqualNodes(const Node& a, const Node& b);

bool DeepEqualChildren(const Node& a, const Node& b) {
  Node ca = a.FirstChild();
  Node cb = b.FirstChild();
  auto skip = [](Node n) {
    while (n && (n.kind() == NodeKind::kComment ||
                 n.kind() == NodeKind::kProcessingInstruction)) {
      n = n.NextSibling();
    }
    return n;
  };
  ca = skip(ca);
  cb = skip(cb);
  while (ca && cb) {
    if (!DeepEqualNodes(ca, cb)) return false;
    ca = skip(ca.NextSibling());
    cb = skip(cb.NextSibling());
  }
  return !ca && !cb;
}

bool DeepEqualNodes(const Node& a, const Node& b) {
  if (a.kind() != b.kind()) return false;
  switch (a.kind()) {
    case NodeKind::kDocument:
      return DeepEqualChildren(a, b);
    case NodeKind::kText:
    case NodeKind::kComment:
      return a.value() == b.value();
    case NodeKind::kProcessingInstruction:
      return a.name() == b.name() && a.value() == b.value();
    case NodeKind::kAttribute:
      return a.name() == b.name() && a.value() == b.value();
    case NodeKind::kElement: {
      if (a.name() != b.name()) return false;
      // Attribute sets must match (order-insensitive).
      size_t count_a = 0;
      for (Node attr = a.FirstAttribute(); attr; attr = attr.NextSibling()) {
        ++count_a;
        bool found = false;
        for (Node battr = b.FirstAttribute(); battr;
             battr = battr.NextSibling()) {
          if (attr.name() == battr.name() && attr.value() == battr.value()) {
            found = true;
            break;
          }
        }
        if (!found) return false;
      }
      size_t count_b = 0;
      for (Node battr = b.FirstAttribute(); battr; battr = battr.NextSibling()) {
        ++count_b;
      }
      if (count_a != count_b) return false;
      return DeepEqualChildren(a, b);
    }
  }
  return false;
}

}  // namespace

Result<Sequence> CallBuiltin(Builtin id, std::vector<Sequence>& args,
                             DynamicContext* ctx, const FocusInfo& focus) {
  switch (id) {
    case Builtin::kDoc: {
      if (args[0].empty()) return Sequence{};
      XQP_ASSIGN_OR_RETURN(std::string uri, StringArg(args[0], "doc"));
      if (ctx == nullptr || ctx->provider == nullptr) {
        return Status::DynamicError("no document provider for fn:doc");
      }
      XQP_ASSIGN_OR_RETURN(std::shared_ptr<const Document> doc,
                           ctx->provider->GetDocument(uri));
      return Sequence{Item(Node(std::move(doc), 0))};
    }
    case Builtin::kCollection: {
      XQP_ASSIGN_OR_RETURN(std::string uri, StringArg(args[0], "collection"));
      if (ctx == nullptr || ctx->provider == nullptr) {
        return Status::DynamicError("no document provider for fn:collection");
      }
      return ctx->provider->GetCollection(uri);
    }
    case Builtin::kRoot: {
      XQP_ASSIGN_OR_RETURN(Sequence arg, ArgOrFocus(args, focus, "root"));
      if (arg.empty()) return Sequence{};
      if (arg.size() != 1 || !arg[0].IsNode()) return WrongArgs("root");
      return Sequence{Item(arg[0].AsNode().Root())};
    }
    case Builtin::kCount:
      return Sequence{
          Item(AtomicValue::Integer(static_cast<int64_t>(args[0].size())))};
    case Builtin::kSum: {
      if (args[0].empty()) {
        if (args.size() > 1) return args[1];
        return Sequence{Item(AtomicValue::Integer(0))};
      }
      bool all_int = true;
      double total = 0;
      int64_t itotal = 0;
      for (const Item& item : args[0]) {
        AtomicValue v = item.Atomized();
        if (v.type() == XsType::kUntypedAtomic) {
          XQP_ASSIGN_OR_RETURN(v, v.CastTo(XsType::kDouble));
        }
        if (!v.IsNumeric()) return WrongArgs("sum");
        if (v.type() == XsType::kInteger) {
          itotal += v.AsInt();
          total += static_cast<double>(v.AsInt());
        } else {
          all_int = false;
          total += v.NumericAsDouble();
        }
      }
      if (all_int) return Sequence{Item(AtomicValue::Integer(itotal))};
      return Sequence{Item(AtomicValue::Double(total))};
    }
    case Builtin::kAvg: {
      if (args[0].empty()) return Sequence{};
      double total = 0;
      for (const Item& item : args[0]) {
        XQP_ASSIGN_OR_RETURN(double v, NumericArg(item, "avg"));
        total += v;
      }
      return Sequence{
          Item(AtomicValue::Double(total / static_cast<double>(args[0].size())))};
    }
    case Builtin::kMin:
    case Builtin::kMax: {
      if (args[0].empty()) return Sequence{};
      AtomicValue best = args[0][0].Atomized();
      if (best.type() == XsType::kUntypedAtomic) {
        XQP_ASSIGN_OR_RETURN(best, best.CastTo(XsType::kDouble));
      }
      for (size_t i = 1; i < args[0].size(); ++i) {
        AtomicValue v = args[0][i].Atomized();
        if (v.type() == XsType::kUntypedAtomic) {
          XQP_ASSIGN_OR_RETURN(v, v.CastTo(XsType::kDouble));
        }
        XQP_ASSIGN_OR_RETURN(CmpResult r, CompareForOrdering(v, best));
        bool better = id == Builtin::kMin ? r == CmpResult::kLess
                                          : r == CmpResult::kGreater;
        if (better) best = v;
      }
      return Sequence{Item(best)};
    }
    case Builtin::kEmpty:
      return Sequence{Item(AtomicValue::Boolean(args[0].empty()))};
    case Builtin::kExists:
      return Sequence{Item(AtomicValue::Boolean(!args[0].empty()))};
    case Builtin::kNot: {
      XQP_ASSIGN_OR_RETURN(bool b, EffectiveBooleanValue(args[0]));
      return Sequence{Item(AtomicValue::Boolean(!b))};
    }
    case Builtin::kTrue:
      return Sequence{Item(AtomicValue::Boolean(true))};
    case Builtin::kFalse:
      return Sequence{Item(AtomicValue::Boolean(false))};
    case Builtin::kBoolean: {
      XQP_ASSIGN_OR_RETURN(bool b, EffectiveBooleanValue(args[0]));
      return Sequence{Item(AtomicValue::Boolean(b))};
    }
    case Builtin::kString: {
      XQP_ASSIGN_OR_RETURN(Sequence arg, ArgOrFocus(args, focus, "string"));
      if (arg.empty()) return Sequence{Item(AtomicValue::String(""))};
      if (arg.size() != 1) return WrongArgs("string");
      return Sequence{Item(AtomicValue::String(arg[0].StringValue()))};
    }
    case Builtin::kData:
      return Atomize(args[0]);
    case Builtin::kNumber: {
      XQP_ASSIGN_OR_RETURN(Sequence arg, ArgOrFocus(args, focus, "number"));
      if (arg.size() != 1) {
        return Sequence{Item(AtomicValue::Double(
            std::numeric_limits<double>::quiet_NaN()))};
      }
      auto cast = arg[0].Atomized().CastTo(XsType::kDouble);
      if (!cast.ok()) {
        return Sequence{Item(AtomicValue::Double(
            std::numeric_limits<double>::quiet_NaN()))};
      }
      return Sequence{Item(cast.value())};
    }
    case Builtin::kStringLength: {
      XQP_ASSIGN_OR_RETURN(Sequence arg,
                           ArgOrFocus(args, focus, "string-length"));
      XQP_ASSIGN_OR_RETURN(std::string s, StringArg(arg, "string-length"));
      return Sequence{
          Item(AtomicValue::Integer(static_cast<int64_t>(s.size())))};
    }
    case Builtin::kConcat: {
      std::string out;
      for (const Sequence& arg : args) {
        if (arg.empty()) continue;
        if (arg.size() != 1) return WrongArgs("concat");
        out += arg[0].Atomized().Lexical();
      }
      return Sequence{Item(AtomicValue::String(std::move(out)))};
    }
    case Builtin::kContains: {
      XQP_ASSIGN_OR_RETURN(std::string a, StringArg(args[0], "contains"));
      XQP_ASSIGN_OR_RETURN(std::string b, StringArg(args[1], "contains"));
      return Sequence{Item(AtomicValue::Boolean(
          b.empty() || a.find(b) != std::string::npos))};
    }
    case Builtin::kStartsWith: {
      XQP_ASSIGN_OR_RETURN(std::string a, StringArg(args[0], "starts-with"));
      XQP_ASSIGN_OR_RETURN(std::string b, StringArg(args[1], "starts-with"));
      return Sequence{Item(AtomicValue::Boolean(a.rfind(b, 0) == 0))};
    }
    case Builtin::kEndsWith: {
      XQP_ASSIGN_OR_RETURN(std::string a, StringArg(args[0], "ends-with"));
      XQP_ASSIGN_OR_RETURN(std::string b, StringArg(args[1], "ends-with"));
      bool ends = b.size() <= a.size() &&
                  a.compare(a.size() - b.size(), b.size(), b) == 0;
      return Sequence{Item(AtomicValue::Boolean(ends))};
    }
    case Builtin::kSubstring: {
      XQP_ASSIGN_OR_RETURN(std::string s, StringArg(args[0], "substring"));
      if (args[1].size() != 1) return WrongArgs("substring");
      XQP_ASSIGN_OR_RETURN(double start, NumericArg(args[1][0], "substring"));
      double len = std::numeric_limits<double>::infinity();
      if (args.size() > 2) {
        if (args[2].size() != 1) return WrongArgs("substring");
        XQP_ASSIGN_OR_RETURN(len, NumericArg(args[2][0], "substring"));
      }
      // XPath rule: characters whose position p satisfies
      // round(start) <= p < round(start) + round(len), 1-based.
      double rs = std::round(start);
      double rl = std::round(len);
      std::string out;
      for (size_t i = 0; i < s.size(); ++i) {
        double p = static_cast<double>(i + 1);
        if (p >= rs && p < rs + rl) out.push_back(s[i]);
      }
      return Sequence{Item(AtomicValue::String(std::move(out)))};
    }
    case Builtin::kSubstringBefore: {
      XQP_ASSIGN_OR_RETURN(std::string a,
                           StringArg(args[0], "substring-before"));
      XQP_ASSIGN_OR_RETURN(std::string b,
                           StringArg(args[1], "substring-before"));
      size_t pos = a.find(b);
      if (b.empty() || pos == std::string::npos) {
        return Sequence{Item(AtomicValue::String(""))};
      }
      return Sequence{Item(AtomicValue::String(a.substr(0, pos)))};
    }
    case Builtin::kSubstringAfter: {
      XQP_ASSIGN_OR_RETURN(std::string a, StringArg(args[0], "substring-after"));
      XQP_ASSIGN_OR_RETURN(std::string b, StringArg(args[1], "substring-after"));
      if (b.empty()) return Sequence{Item(AtomicValue::String(a))};
      size_t pos = a.find(b);
      if (pos == std::string::npos) {
        return Sequence{Item(AtomicValue::String(""))};
      }
      return Sequence{Item(AtomicValue::String(a.substr(pos + b.size())))};
    }
    case Builtin::kNormalizeSpace: {
      XQP_ASSIGN_OR_RETURN(Sequence arg,
                           ArgOrFocus(args, focus, "normalize-space"));
      XQP_ASSIGN_OR_RETURN(std::string s, StringArg(arg, "normalize-space"));
      return Sequence{Item(AtomicValue::String(NormalizeSpace(s)))};
    }
    case Builtin::kUpperCase:
    case Builtin::kLowerCase: {
      XQP_ASSIGN_OR_RETURN(std::string s, StringArg(args[0], "upper/lower"));
      for (char& c : s) {
        c = id == Builtin::kUpperCase
                ? static_cast<char>(std::toupper(static_cast<unsigned char>(c)))
                : static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
      }
      return Sequence{Item(AtomicValue::String(std::move(s)))};
    }
    case Builtin::kTranslate: {
      XQP_ASSIGN_OR_RETURN(std::string s, StringArg(args[0], "translate"));
      XQP_ASSIGN_OR_RETURN(std::string from, StringArg(args[1], "translate"));
      XQP_ASSIGN_OR_RETURN(std::string to, StringArg(args[2], "translate"));
      std::string out;
      for (char c : s) {
        size_t pos = from.find(c);
        if (pos == std::string::npos) {
          out.push_back(c);
        } else if (pos < to.size()) {
          out.push_back(to[pos]);
        }  // Else: dropped.
      }
      return Sequence{Item(AtomicValue::String(std::move(out)))};
    }
    case Builtin::kStringJoin: {
      XQP_ASSIGN_OR_RETURN(std::string sep, StringArg(args[1], "string-join"));
      std::string out;
      bool first = true;
      for (const Item& item : args[0]) {
        if (!first) out += sep;
        out += item.Atomized().Lexical();
        first = false;
      }
      return Sequence{Item(AtomicValue::String(std::move(out)))};
    }
    case Builtin::kPosition:
      if (!focus.has_focus) {
        return Status::DynamicError("position() requires a context item");
      }
      return Sequence{Item(AtomicValue::Integer(focus.position))};
    case Builtin::kLast:
      if (!focus.has_focus) {
        return Status::DynamicError("last() requires a context item");
      }
      return Sequence{Item(AtomicValue::Integer(focus.size))};
    case Builtin::kDistinctValues: {
      std::unordered_set<AtomicValue, AtomicHash, AtomicEq> seen;
      Sequence out;
      for (const Item& item : args[0]) {
        AtomicValue v = item.Atomized();
        if (seen.insert(v).second) out.push_back(Item(std::move(v)));
      }
      return out;
    }
    case Builtin::kDistinctNodes: {
      Sequence out = args[0];
      XQP_RETURN_NOT_OK(SortDocOrderDistinct(&out));
      return out;
    }
    case Builtin::kReverse: {
      Sequence out(args[0].rbegin(), args[0].rend());
      return out;
    }
    case Builtin::kSubsequence: {
      if (args[1].size() != 1) return WrongArgs("subsequence");
      XQP_ASSIGN_OR_RETURN(double start, NumericArg(args[1][0], "subsequence"));
      double len = std::numeric_limits<double>::infinity();
      if (args.size() > 2) {
        if (args[2].size() != 1) return WrongArgs("subsequence");
        XQP_ASSIGN_OR_RETURN(len, NumericArg(args[2][0], "subsequence"));
      }
      double rs = std::round(start);
      double rl = std::round(len);
      Sequence out;
      for (size_t i = 0; i < args[0].size(); ++i) {
        double p = static_cast<double>(i + 1);
        if (p >= rs && p < rs + rl) out.push_back(args[0][i]);
      }
      return out;
    }
    case Builtin::kIndexOf: {
      if (args[1].size() != 1) return WrongArgs("index-of");
      AtomicValue target = args[1][0].Atomized();
      Sequence out;
      for (size_t i = 0; i < args[0].size(); ++i) {
        AtomicValue v = args[0][i].Atomized();
        auto r = CompareForOrdering(v, target);
        if (r.ok() && r.value() == CmpResult::kEqual) {
          out.push_back(Item(AtomicValue::Integer(static_cast<int64_t>(i + 1))));
        }
      }
      return out;
    }
    case Builtin::kInsertBefore: {
      if (args[1].size() != 1) return WrongArgs("insert-before");
      XQP_ASSIGN_OR_RETURN(double dpos, NumericArg(args[1][0], "insert-before"));
      int64_t pos = static_cast<int64_t>(dpos);
      if (pos < 1) pos = 1;
      if (pos > static_cast<int64_t>(args[0].size()) + 1) {
        pos = static_cast<int64_t>(args[0].size()) + 1;
      }
      Sequence out;
      for (size_t i = 0; i < args[0].size(); ++i) {
        if (static_cast<int64_t>(i + 1) == pos) {
          out.insert(out.end(), args[2].begin(), args[2].end());
        }
        out.push_back(args[0][i]);
      }
      if (pos == static_cast<int64_t>(args[0].size()) + 1) {
        out.insert(out.end(), args[2].begin(), args[2].end());
      }
      return out;
    }
    case Builtin::kRemove: {
      if (args[1].size() != 1) return WrongArgs("remove");
      XQP_ASSIGN_OR_RETURN(double dpos, NumericArg(args[1][0], "remove"));
      int64_t pos = static_cast<int64_t>(dpos);
      Sequence out;
      for (size_t i = 0; i < args[0].size(); ++i) {
        if (static_cast<int64_t>(i + 1) != pos) out.push_back(args[0][i]);
      }
      return out;
    }
    case Builtin::kZeroOrOne:
      if (args[0].size() > 1) {
        return Status::DynamicError("fn:zero-or-one: more than one item");
      }
      return args[0];
    case Builtin::kOneOrMore:
      if (args[0].empty()) {
        return Status::DynamicError("fn:one-or-more: empty sequence");
      }
      return args[0];
    case Builtin::kExactlyOne:
      if (args[0].size() != 1) {
        return Status::DynamicError("fn:exactly-one: not a singleton");
      }
      return args[0];
    case Builtin::kDeepEqual: {
      if (args[0].size() != args[1].size()) {
        return Sequence{Item(AtomicValue::Boolean(false))};
      }
      for (size_t i = 0; i < args[0].size(); ++i) {
        const Item& a = args[0][i];
        const Item& b = args[1][i];
        if (a.IsNode() != b.IsNode()) {
          return Sequence{Item(AtomicValue::Boolean(false))};
        }
        bool eq;
        if (a.IsNode()) {
          eq = DeepEqualNodes(a.AsNode(), b.AsNode());
        } else {
          eq = a.AsAtomic().DeepEquals(b.AsAtomic());
        }
        if (!eq) return Sequence{Item(AtomicValue::Boolean(false))};
      }
      return Sequence{Item(AtomicValue::Boolean(true))};
    }
    case Builtin::kName:
    case Builtin::kLocalName:
    case Builtin::kNamespaceUri: {
      XQP_ASSIGN_OR_RETURN(Sequence arg, ArgOrFocus(args, focus, "name"));
      if (arg.empty()) return Sequence{Item(AtomicValue::String(""))};
      if (arg.size() != 1 || !arg[0].IsNode()) return WrongArgs("name");
      const Node& n = arg[0].AsNode();
      if (!n.HasName()) return Sequence{Item(AtomicValue::String(""))};
      const QName& q = n.name();
      std::string out;
      if (id == Builtin::kName) out = q.Lexical();
      else if (id == Builtin::kLocalName) out = q.local;
      else out = q.uri;
      return Sequence{Item(AtomicValue::String(std::move(out)))};
    }
    case Builtin::kNodeName: {
      if (args[0].empty()) return Sequence{};
      if (args[0].size() != 1 || !args[0][0].IsNode()) {
        return WrongArgs("node-name");
      }
      const Node& n = args[0][0].AsNode();
      if (!n.HasName()) return Sequence{};
      return Sequence{Item(AtomicValue::QNameValue(n.name().Clark()))};
    }
    case Builtin::kNodeKind: {
      if (args[0].size() != 1 || !args[0][0].IsNode()) {
        return WrongArgs("node-kind");
      }
      return Sequence{Item(AtomicValue::String(
          std::string(NodeKindName(args[0][0].AsNode().kind()))))};
    }
    case Builtin::kFloor:
    case Builtin::kCeiling:
    case Builtin::kRound:
    case Builtin::kAbs: {
      if (args[0].empty()) return Sequence{};
      if (args[0].size() != 1) return WrongArgs("floor/ceiling/round/abs");
      AtomicValue v = args[0][0].Atomized();
      if (v.type() == XsType::kUntypedAtomic) {
        XQP_ASSIGN_OR_RETURN(v, v.CastTo(XsType::kDouble));
      }
      if (!v.IsNumeric()) return WrongArgs("floor/ceiling/round/abs");
      if (v.type() == XsType::kInteger) {
        int64_t x = v.AsInt();
        if (id == Builtin::kAbs && x < 0) x = -x;
        return Sequence{Item(AtomicValue::Integer(x))};
      }
      double x = v.NumericAsDouble();
      double r = 0;
      switch (id) {
        case Builtin::kFloor:
          r = std::floor(x);
          break;
        case Builtin::kCeiling:
          r = std::ceil(x);
          break;
        case Builtin::kRound:
          r = std::floor(x + 0.5);  // round-half-up per XPath.
          break;
        default:
          r = std::fabs(x);
      }
      if (v.type() == XsType::kDecimal) {
        return Sequence{Item(AtomicValue::Decimal(r))};
      }
      return Sequence{Item(AtomicValue::Double(r))};
    }
    case Builtin::kError: {
      std::string msg = "fn:error";
      if (!args.empty() && !args[0].empty()) {
        msg += ": " + args[0][0].Atomized().Lexical();
      }
      if (args.size() > 1 && !args[1].empty()) {
        msg += " — " + args[1][0].Atomized().Lexical();
      }
      return Status::DynamicError(msg);
    }
    case Builtin::kTrace: {
      XQP_ASSIGN_OR_RETURN(std::string label, StringArg(args[1], "trace"));
      std::fprintf(stderr, "trace: %s (%zu items)\n", label.c_str(),
                   args[0].size());
      return args[0];
    }
    case Builtin::kHead:
      if (args[0].empty()) return Sequence{};
      return Sequence{args[0][0]};
    case Builtin::kTail: {
      Sequence out;
      if (args[0].size() > 1) {
        out.assign(args[0].begin() + 1, args[0].end());
      }
      return out;
    }
  }
  return Status::Internal("unhandled builtin");
}

}  // namespace xqp
