#ifndef XQP_EXEC_ITEM_H_
#define XQP_EXEC_ITEM_H_

#include <string>
#include <variant>
#include <vector>

#include "base/parallel.h"
#include "base/status.h"
#include "xml/atomic_value.h"
#include "xml/node.h"

namespace xqp {

/// An XQuery data-model item: a node or an atomic value. Sequences are flat
/// vectors of items (nesting is impossible by construction, as the data
/// model requires).
class Item {
 public:
  Item() : v_(AtomicValue()) {}
  Item(AtomicValue atom) : v_(std::move(atom)) {}  // NOLINT
  Item(Node node) : v_(std::move(node)) {}         // NOLINT

  bool IsNode() const { return std::holds_alternative<Node>(v_); }
  bool IsAtomic() const { return !IsNode(); }

  const Node& AsNode() const { return std::get<Node>(v_); }
  const AtomicValue& AsAtomic() const { return std::get<AtomicValue>(v_); }

  /// fn:string of a single item.
  std::string StringValue() const {
    return IsNode() ? AsNode().StringValue() : AsAtomic().Lexical();
  }

  /// fn:data of a single item: typed value of nodes (untypedAtomic in this
  /// engine's untyped model), identity for atomics.
  AtomicValue Atomized() const {
    return IsNode() ? AsNode().TypedValue() : AsAtomic();
  }

 private:
  std::variant<AtomicValue, Node> v_;
};

using Sequence = std::vector<Item>;

/// Atomizes a whole sequence (fn:data).
Sequence Atomize(const Sequence& seq);

/// XQuery effective boolean value of a sequence (the paper's BEV rules):
/// () => false; first item a node => true; singleton boolean/string/numeric
/// by value; anything else is a type error.
Result<bool> EffectiveBooleanValue(const Sequence& seq);

/// Sorts nodes into document order and removes duplicate (identical) nodes.
/// Errors if the sequence contains atomic values (callers guarantee
/// node-only input). This is the expensive "ddo" operation whose elision
/// the optimizer targets. Sequences of at least `parallel_threshold` items
/// route through the chunked parallel sort (0 disables the parallel path);
/// `num_threads` 0 means DefaultParallelism().
Status SortDocOrderDistinct(Sequence* seq,
                            size_t parallel_threshold = kDefaultParallelThreshold,
                            int num_threads = 0);

/// Removes duplicate nodes by identity while preserving the existing order
/// (for paths that are duplicate-prone but provably ordered, or vice
/// versa). Errors on atomic values.
Status DedupNodesPreservingOrder(Sequence* seq);

/// True if `a` and `b` are the same sequence of items under node identity /
/// atomic deep-equality; used by tests to compare engine outputs.
bool SequencesIdentical(const Sequence& a, const Sequence& b);

}  // namespace xqp

#endif  // XQP_EXEC_ITEM_H_
