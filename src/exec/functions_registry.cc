#include "exec/functions.h"

#include "query/static_context.h"

namespace xqp {

namespace {

constexpr BuiltinDesc kBuiltins[] = {
    {Builtin::kDoc, "doc", 1, 1},
    {Builtin::kDoc, "document", 1, 1},  // Paper-era alias.
    {Builtin::kCollection, "collection", 1, 1},
    {Builtin::kRoot, "root", 0, 1},
    {Builtin::kCount, "count", 1, 1},
    {Builtin::kSum, "sum", 1, 2},
    {Builtin::kAvg, "avg", 1, 1},
    {Builtin::kMin, "min", 1, 1},
    {Builtin::kMax, "max", 1, 1},
    {Builtin::kEmpty, "empty", 1, 1},
    {Builtin::kExists, "exists", 1, 1},
    {Builtin::kNot, "not", 1, 1},
    {Builtin::kTrue, "true", 0, 0},
    {Builtin::kFalse, "false", 0, 0},
    {Builtin::kBoolean, "boolean", 1, 1},
    {Builtin::kString, "string", 0, 1},
    {Builtin::kData, "data", 1, 1},
    {Builtin::kNumber, "number", 0, 1},
    {Builtin::kStringLength, "string-length", 0, 1},
    {Builtin::kConcat, "concat", 2, -1},
    {Builtin::kContains, "contains", 2, 2},
    {Builtin::kStartsWith, "starts-with", 2, 2},
    {Builtin::kEndsWith, "ends-with", 2, 2},
    {Builtin::kSubstring, "substring", 2, 3},
    {Builtin::kSubstringBefore, "substring-before", 2, 2},
    {Builtin::kSubstringAfter, "substring-after", 2, 2},
    {Builtin::kNormalizeSpace, "normalize-space", 0, 1},
    {Builtin::kUpperCase, "upper-case", 1, 1},
    {Builtin::kLowerCase, "lower-case", 1, 1},
    {Builtin::kTranslate, "translate", 3, 3},
    {Builtin::kStringJoin, "string-join", 2, 2},
    {Builtin::kPosition, "position", 0, 0},
    {Builtin::kLast, "last", 0, 0},
    {Builtin::kDistinctValues, "distinct-values", 1, 1},
    {Builtin::kDistinctNodes, "distinct-nodes", 1, 1},
    {Builtin::kReverse, "reverse", 1, 1},
    {Builtin::kSubsequence, "subsequence", 2, 3},
    {Builtin::kIndexOf, "index-of", 2, 2},
    {Builtin::kInsertBefore, "insert-before", 3, 3},
    {Builtin::kRemove, "remove", 2, 2},
    {Builtin::kZeroOrOne, "zero-or-one", 1, 1},
    {Builtin::kOneOrMore, "one-or-more", 1, 1},
    {Builtin::kExactlyOne, "exactly-one", 1, 1},
    {Builtin::kDeepEqual, "deep-equal", 2, 2},
    {Builtin::kName, "name", 0, 1},
    {Builtin::kLocalName, "local-name", 0, 1},
    {Builtin::kNamespaceUri, "namespace-uri", 0, 1},
    {Builtin::kNodeName, "node-name", 1, 1},
    {Builtin::kNodeKind, "node-kind", 1, 1},
    {Builtin::kFloor, "floor", 1, 1},
    {Builtin::kCeiling, "ceiling", 1, 1},
    {Builtin::kRound, "round", 1, 1},
    {Builtin::kAbs, "abs", 1, 1},
    {Builtin::kError, "error", 0, 2},
    {Builtin::kTrace, "trace", 2, 2},
    {Builtin::kHead, "head", 1, 1},
    {Builtin::kTail, "tail", 1, 1},
};

bool UriIsFn(std::string_view uri) {
  return uri.empty() || uri == kFnNamespace;
}

}  // namespace

const BuiltinDesc* LookupBuiltin(std::string_view uri, std::string_view local,
                                 size_t arity) {
  if (!UriIsFn(uri)) return nullptr;
  for (const BuiltinDesc& desc : kBuiltins) {
    if (local == desc.local && static_cast<int>(arity) >= desc.min_args &&
        (desc.max_args < 0 || static_cast<int>(arity) <= desc.max_args)) {
      return &desc;
    }
  }
  return nullptr;
}

const BuiltinDesc* LookupBuiltinByName(std::string_view uri,
                                       std::string_view local) {
  if (!UriIsFn(uri)) return nullptr;
  for (const BuiltinDesc& desc : kBuiltins) {
    if (local == desc.local) return &desc;
  }
  return nullptr;
}

}  // namespace xqp
