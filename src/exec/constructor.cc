#include "exec/constructor.h"

namespace xqp {
namespace construct {

std::string AtomizedString(const Sequence& seq) {
  std::string out;
  bool first = true;
  for (const Item& item : seq) {
    if (!first) out.push_back(' ');
    out += item.Atomized().Lexical();
    first = false;
  }
  return out;
}

namespace {

/// Appends one content part (the value of one enclosed expression) to the
/// builder: atomic runs join with spaces into text; nodes are deep-copied.
Status AppendContentPart(DocumentBuilder* builder, const Sequence& part,
                         bool allow_attributes) {
  std::string pending;  // Joined atomics not yet flushed.
  bool has_pending = false;
  auto flush = [&]() -> Status {
    if (has_pending) {
      XQP_RETURN_NOT_OK(builder->Text(pending));
      pending.clear();
      has_pending = false;
    }
    return Status::OK();
  };
  for (const Item& item : part) {
    if (item.IsAtomic()) {
      if (has_pending) pending.push_back(' ');
      pending += item.AsAtomic().Lexical();
      has_pending = true;
      continue;
    }
    XQP_RETURN_NOT_OK(flush());
    const Node& node = item.AsNode();
    if (node.kind() == NodeKind::kAttribute && !allow_attributes) {
      return Status::DynamicError(
          "attribute node not allowed in this content position");
    }
    XQP_RETURN_NOT_OK(builder->CopySubtree(node.doc(), node.index()));
  }
  return flush();
}

}  // namespace

Result<Item> Element(const QName& name,
                     const std::vector<ElementCtorExpr::NsDecl>& ns_decls,
                     const std::vector<Sequence>& content_parts,
                     DynamicContext* ctx) {
  DocumentBuilder builder;
  XQP_RETURN_NOT_OK(builder.BeginElement(name));
  for (const auto& d : ns_decls) {
    XQP_RETURN_NOT_OK(builder.NamespaceDecl(d.prefix, d.uri));
  }
  for (const Sequence& part : content_parts) {
    XQP_RETURN_NOT_OK(AppendContentPart(&builder, part,
                                        /*allow_attributes=*/true));
  }
  XQP_RETURN_NOT_OK(builder.EndElement());
  XQP_ASSIGN_OR_RETURN(std::shared_ptr<Document> doc, builder.Finish());
  if (ctx != nullptr) {
    ++ctx->stats.documents_built;
    ctx->stats.nodes_constructed += doc->NumNodes();
  }
  return Item(Node(std::move(doc), 1));
}

Result<Item> Attribute(const QName& name,
                       const std::vector<Sequence>& value_parts,
                       DynamicContext* ctx) {
  std::string value;
  for (const Sequence& part : value_parts) value += AtomizedString(part);
  DocumentBuilder builder;
  XQP_RETURN_NOT_OK(builder.OrphanAttribute(name, value));
  XQP_ASSIGN_OR_RETURN(std::shared_ptr<Document> doc, builder.Finish());
  if (ctx != nullptr) {
    ++ctx->stats.documents_built;
    ++ctx->stats.nodes_constructed;
  }
  return Item(Node(std::move(doc), 1));
}

Result<Sequence> Text(const Sequence& content, DynamicContext* ctx) {
  if (content.empty()) return Sequence{};
  std::string value = AtomizedString(content);
  DocumentBuilder builder;
  XQP_RETURN_NOT_OK(builder.Text(value));
  XQP_ASSIGN_OR_RETURN(std::shared_ptr<Document> doc, builder.Finish());
  if (doc->NumNodes() < 2) return Sequence{};  // Empty text dropped.
  if (ctx != nullptr) {
    ++ctx->stats.documents_built;
    ++ctx->stats.nodes_constructed;
  }
  return Sequence{Item(Node(std::move(doc), 1))};
}

Result<Item> Comment(const Sequence& content, DynamicContext* ctx) {
  std::string value = AtomizedString(content);
  if (value.find("--") != std::string::npos || (!value.empty() && value.back() == '-')) {
    return Status::DynamicError("comment content may not contain \"--\"");
  }
  DocumentBuilder builder;
  XQP_RETURN_NOT_OK(builder.Comment(value));
  XQP_ASSIGN_OR_RETURN(std::shared_ptr<Document> doc, builder.Finish());
  if (ctx != nullptr) {
    ++ctx->stats.documents_built;
    ++ctx->stats.nodes_constructed;
  }
  return Item(Node(std::move(doc), 1));
}

Result<Item> Pi(const std::string& target, const Sequence& content,
                DynamicContext* ctx) {
  std::string value = AtomizedString(content);
  DocumentBuilder builder;
  XQP_RETURN_NOT_OK(builder.ProcessingInstruction(target, value));
  XQP_ASSIGN_OR_RETURN(std::shared_ptr<Document> doc, builder.Finish());
  if (ctx != nullptr) {
    ++ctx->stats.documents_built;
    ++ctx->stats.nodes_constructed;
  }
  return Item(Node(std::move(doc), 1));
}

Result<Item> DocumentNode(const std::vector<Sequence>& content_parts,
                          DynamicContext* ctx) {
  DocumentBuilder builder;
  for (const Sequence& part : content_parts) {
    XQP_RETURN_NOT_OK(AppendContentPart(&builder, part,
                                        /*allow_attributes=*/false));
  }
  XQP_ASSIGN_OR_RETURN(std::shared_ptr<Document> doc, builder.Finish());
  if (ctx != nullptr) {
    ++ctx->stats.documents_built;
    ctx->stats.nodes_constructed += doc->NumNodes();
  }
  return Item(Node(std::move(doc), 0));
}

}  // namespace construct
}  // namespace xqp
