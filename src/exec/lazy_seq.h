#ifndef XQP_EXEC_LAZY_SEQ_H_
#define XQP_EXEC_LAZY_SEQ_H_

#include <memory>

#include "exec/item.h"

namespace xqp {

class DynamicContext;

/// Pull-based item iterator: the paper's iterator execution model at item
/// granularity. Reset() (re)starts evaluation under the current dynamic
/// context; Next() produces one item at a time, on demand (lazy evaluation).
class ItemIterator {
 public:
  virtual ~ItemIterator() = default;

  virtual Status Reset(DynamicContext* ctx) = 0;
  /// Produces the next item. Returns false at end of sequence.
  virtual Result<bool> Next(Item* out) = 0;
};

/// A sequence whose items are computed on demand and cached as they are
/// pulled, so several consumers can read it without recomputation and
/// without eager materialization. This is the paper's "Buffer Iterator
/// Factory": the result of a common subexpression (or a let-bound variable)
/// is buffered once, and each consumer scans the buffer, extending it
/// lazily. A LazySeq backed by a plain vector is the fully materialized
/// special case.
class LazySeq {
 public:
  /// Fully materialized sequence.
  static std::shared_ptr<LazySeq> FromVector(Sequence items);

  /// Single-item sequence (cheap path for for-loop bindings).
  static std::shared_ptr<LazySeq> FromItem(Item item);

  /// Empty sequence.
  static std::shared_ptr<LazySeq> Empty();

  /// Lazily buffered sequence; `source` must already be Reset. The LazySeq
  /// takes ownership and pulls from it as consumers advance.
  static std::shared_ptr<LazySeq> FromIterator(
      std::unique_ptr<ItemIterator> source);

  /// Item `i`, materializing the prefix [0, i] if needed. Returns nullptr
  /// once `i` is past the end. The pointer is invalidated by further Get
  /// calls with larger indices.
  Result<const Item*> Get(size_t i);

  /// Total size (forces full materialization).
  Result<size_t> Size();

  /// Materializes everything and returns the buffer.
  Result<const Sequence*> Materialize();

  /// True once the source is exhausted.
  bool fully_materialized() const { return source_ == nullptr; }

  /// Items buffered so far (diagnostics; experiment E2 uses this to show
  /// how little of a sequence lazy evaluation touches).
  size_t buffered() const { return buffer_.size(); }

 private:
  LazySeq() = default;

  /// Pulls items until the buffer has > `i` items or the source ends.
  Status FillTo(size_t i);

  Sequence buffer_;
  std::unique_ptr<ItemIterator> source_;
};

using LazySeqPtr = std::shared_ptr<LazySeq>;

/// Iterator over a LazySeq (one consumer's cursor into the shared buffer).
class LazySeqIterator : public ItemIterator {
 public:
  explicit LazySeqIterator(LazySeqPtr seq) : seq_(std::move(seq)) {}

  Status Reset(DynamicContext* ctx) override {
    pos_ = 0;
    return Status::OK();
  }
  Result<bool> Next(Item* out) override {
    XQP_ASSIGN_OR_RETURN(const Item* item, seq_->Get(pos_));
    if (item == nullptr) return false;
    ++pos_;
    *out = *item;
    return true;
  }

 private:
  LazySeqPtr seq_;
  size_t pos_ = 0;
};

}  // namespace xqp

#endif  // XQP_EXEC_LAZY_SEQ_H_
