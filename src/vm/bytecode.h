#ifndef XQP_VM_BYTECODE_H_
#define XQP_VM_BYTECODE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "exec/item.h"
#include "exec/order_by.h"
#include "query/expr.h"

namespace xqp {
namespace vm {

/// The instruction set of the bytecode backend: a register/stack hybrid
/// scoped to the profitable core of the language — FLWOR tuple iteration
/// (including order-by), arithmetic, comparisons, boolean logic, variable
/// refs, literals, sequence construction, builtin calls, path navigation
/// and index probes, and node construction. Everything else compiles to a
/// kBailout referencing a thunk that runs the subtree on the lazy engine.
///
/// Value model: every stack cell and local register holds a full Sequence.
/// Stack cells are preallocated and assigned into (never pushed/popped as
/// vector elements), so the hot loop reuses their capacity and runs
/// allocation-free for typical numeric work.
enum class Op : uint8_t {
  kPushConst,        // a = const-pool index; push a copy of the pool entry.
  kPushEmpty,        // Push the empty sequence.
  kPushContextItem,  // Push the initial context item (error when absent).
  kLoadLocal,        // a = slot; push a copy of local register `a`.
  kLoadGlobal,       // a = global slot; materialize and push ctx->globals[a].
  kStoreLocal,       // a = slot; pop into register `a`. flag&1: also mirror
                     //   into ctx->slots[a] for bailout thunks.
  kConcat,           // a = n; pop n sequences, push their concatenation.
  kRange,            // Pop hi, lo; push the integer range (governed).
  kArith,            // flag = ArithOp; pop rhs, lhs; push the result.
  kUnary,            // flag = negate; pop operand; push the result.
  kValueCmp,         // flag = CompOp; pop rhs, lhs; push () or boolean.
  kGeneralCmp,       // flag = CompOp; pop rhs, lhs; push boolean.
  kNodeCmp,          // flag = CompOp; pop rhs, lhs; push () or boolean.
  kEbv,              // Pop; push the effective boolean value as a singleton.
  kJump,             // a = target pc.
  kJumpIfFalse,      // a = target pc; pop, branch when EBV is false.
  kJumpIfTrue,       // a = target pc; pop, branch when EBV is true.
  kIterNew,          // a = iterator register; pop the domain sequence.
  kIterNext,         // a = iterator register, b = exit pc, c = var slot
                     //   (-1: none). Advances the iterator; at end jumps to
                     //   b, else binds the item into register c. flag&1:
                     //   mirror the binding into ctx->slots[c]. Polls the
                     //   governor (every loop back-edge lands here).
  kBindPos,          // a = iterator register, b = pos slot; bind the 1-based
                     //   position ("at $p"). flag&1: mirror.
  kAccumNew,         // Open a result accumulator.
  kAccumAdd,         // Pop; append to the innermost accumulator.
  kAccumEnd,         // Close the innermost accumulator; push its contents.
  kCallBuiltin,      // a = Builtin id, b = argc; pop argc args, push result.
  kNavStep,          // a = path-plan index; pop the origin sequence, walk the
                     //   plan's axis/name-test over each node, push the step
                     //   output (doc-order sorted/deduped per the PathExpr's
                     //   needs_sort/needs_dedup flags). Polls the governor per
                     //   origin item; charges bytes only for blocking levels,
                     //   mirroring the lazy PathIt.
  kIndexProbe,       // a = path-plan index, b = join pc. Offer the chain to
                     //   the value-index/synopsis executor; when it answers,
                     //   push the result and jump to b, else fall through to
                     //   the navigation code. Emitted for predicate chains.
  kAccessExec,       // Same operands/behavior as kIndexProbe, emitted for
                     //   predicate-free chains where the full strategy
                     //   dispatch (nav/sjoin/twig/index) applies.
  kConstructElem,    // a = ctor-plan index, b = evaluated child count. Pop b
                     //   sequences (the computed name first when the plan's
                     //   expression has one, then the content parts in
                     //   order), assemble the element in a scratch
                     //   DocumentBuilder via the shared construct::Element
                     //   (identical namespace handling, whitespace joining,
                     //   governor byte charges, and error strings in every
                     //   backend), push the singleton node.
  kConstructAttr,    // Same layout as kConstructElem for a parentless
                     //   attribute node (construct::Attribute).
  kConstructText,    // Pop the content sequence, push construct::Text of it
                     //   (the empty sequence when the content is empty).
  kConstructNode,    // flag = 0 comment / 1 pi / 2 document; a = ctor-plan
                     //   index (the pi target; unused otherwise). Pop the
                     //   content sequence, push the constructed node.
  kPushRoot,         // Push the root of the context item ("/"); the
                     //   interpreter's exact absent-context and non-node
                     //   errors.
  kSortOpen,         // a = sort-plan index; open an order-by buffer with one
                     //   key cell per order spec.
  kSortKey,          // a = spec index; pop the raw key sequence, atomize and
                     //   validate it (untypedAtomic compares as xs:string),
                     //   assign key cell a of the innermost open sort.
  kSortAdd,          // Pop the return value; append (current keys, value) to
                     //   the innermost sort buffer. Polls the governor — one
                     //   cooperative check per materialized tuple.
  kSortTuples,       // a = sort-plan index; stable-sort the innermost buffer
                     //   by its typed keys (ascending/descending, empty
                     //   greatest/least) and push the concatenated results
                     //   in sorted tuple order.
  kBailout,          // a = thunk index; run the referenced expression on the
                     //   lazy engine and push its result.
  kPop,              // Pop and discard.
  kHalt,             // Pop the final result and stop.
};

std::string_view OpName(Op op);

/// One instruction. `flag` carries the sub-operation (ArithOp / CompOp /
/// negate) or the dual-store bit; a/b/c are pool indexes, pc targets, and
/// register numbers as documented per opcode.
struct Insn {
  Op op;
  uint8_t flag = 0;
  int32_t a = 0;
  int32_t b = 0;
  int32_t c = 0;
};

/// A compiled query body: flat code, the constant pool, and the bailout
/// thunk table. Immutable after compilation and shared across concurrent
/// executions; all mutable run state lives in the Vm.
struct Program {
  std::vector<Insn> code;

  /// Literal values referenced by kPushConst. Entries 0 and 1 are always
  /// the canonical singleton false/true sequences.
  std::vector<Sequence> const_pool;
  /// Estimated heap footprint of the pool, charged to the memory budget at
  /// the start of every run.
  uint64_t const_pool_bytes = 0;

  /// An uncompiled subtree: executed on the lazy engine when its kBailout
  /// is reached. `reason` names the construct that stopped compilation
  /// (surfaced in EXPLAIN).
  struct Thunk {
    const Expr* expr = nullptr;
    std::string reason;
  };
  std::vector<Thunk> thunks;

  /// A lowered path level referenced by kNavStep / kIndexProbe /
  /// kAccessExec. `path` carries the ordering flags and (for the probe
  /// ops) the chain handed to TryExecuteAccessPath; `step` is the axis +
  /// name test kNavStep walks (null for probe-only entries).
  struct PathPlan {
    const PathExpr* path = nullptr;
    const StepExpr* step = nullptr;
  };
  std::vector<PathPlan> paths;

  /// A constructor lowered to kConstructElem/kConstructAttr/kConstructNode:
  /// the expression carries the static name, namespace declarations, and
  /// pi target the opcode needs at run time.
  struct CtorPlan {
    const Expr* expr = nullptr;
  };
  std::vector<CtorPlan> ctors;

  /// The order-spec modifiers of one order-by FLWOR, in clause order;
  /// referenced by kSortOpen / kSortTuples.
  struct SortPlan {
    std::vector<flwor::OrderSpecFlags> specs;
  };
  std::vector<SortPlan> sorts;

  /// Expressions synthesized during lowering (e.g. the navigation twin of
  /// an index-probed predicate chain, run as a thunk when the probe
  /// declines). Thunk/PathPlan pointers may refer here; kept alive for the
  /// Program's lifetime.
  std::vector<std::unique_ptr<Expr>> owned_exprs;

  /// Register-file sizing: module frame slots, FLWOR/quantifier iterator
  /// registers (allocated by loop nesting depth), and operand stack cells.
  int num_slots = 0;
  int num_iters = 0;
  int max_stack = 0;

  /// True when the plan root itself is uncompilable — the whole program is
  /// one kBailout and the engine runs the lazy path directly instead.
  bool trivial_bailout = false;

  /// The compiled root (for the EXPLAIN [vm] marker), null when
  /// trivial_bailout.
  const Expr* root = nullptr;
};

constexpr int kConstFalse = 0;
constexpr int kConstTrue = 1;

}  // namespace vm
}  // namespace xqp

#endif  // XQP_VM_BYTECODE_H_
