#ifndef XQP_VM_VM_H_
#define XQP_VM_VM_H_

#include "base/status.h"
#include "exec/dynamic_context.h"
#include "vm/bytecode.h"

namespace xqp {
namespace vm {

/// Executes `program` under `ctx` and returns the materialized result.
/// The program is shared and immutable; all mutable run state (operand
/// stack, registers, iterators, thunk iterators) is per-call, so one
/// Program may run concurrently from many threads. The governor in
/// `ctx` (if any) is polled at every loop back-edge. Callers charge the
/// constant-pool bytes and the result items (the engine does both).
Result<Sequence> RunProgram(const Program& program, DynamicContext* ctx);

}  // namespace vm
}  // namespace xqp

#endif  // XQP_VM_VM_H_
