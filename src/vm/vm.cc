#include "vm/vm.h"

#include <cmath>
#include <cstdint>
#include <iterator>
#include <memory>
#include <utility>
#include <vector>

#include "base/limits.h"
#include "base/metrics.h"
#include "exec/arithmetic.h"
#include "exec/axes.h"
#include "exec/builtins.h"
#include "exec/compare.h"
#include "exec/constructor.h"
#include "exec/interpreter.h"
#include "exec/item.h"
#include "exec/iterators.h"
#include "exec/order_by.h"
#include "opt/access_path.h"

// Dispatch strategy: jump-threaded computed goto on GCC/Clang (each handler
// ends with its own indirect branch, so the CPU predicts per-opcode-pair),
// plain switch-in-a-loop elsewhere. Handler bodies are written once; the
// macros below select the surrounding control flow.
#if defined(__GNUC__) || defined(__clang__)
#define XQP_VM_COMPUTED_GOTO 1
#else
#define XQP_VM_COMPUTED_GOTO 0
#endif

namespace xqp {
namespace vm {
namespace {

/// Relation test shared by the integer fast paths of value and general
/// comparisons (for two singleton xs:integers the two families agree).
bool IntCmp(CompOp op, int64_t a, int64_t b) {
  switch (op) {
    case CompOp::kValueEq: case CompOp::kGenEq: return a == b;
    case CompOp::kValueNe: case CompOp::kGenNe: return a != b;
    case CompOp::kValueLt: case CompOp::kGenLt: return a < b;
    case CompOp::kValueLe: case CompOp::kGenLe: return a <= b;
    case CompOp::kValueGt: case CompOp::kGenGt: return a > b;
    case CompOp::kValueGe: case CompOp::kGenGe: return a >= b;
    default: return false;  // Node comparisons never reach this.
  }
}

/// The interpreter atomizes comparison/arithmetic operands with a full
/// copy; sequences that are already all-atomic (the common case in
/// compiled code) are passed through without one.
const Sequence& AtomizeView(const Sequence& in, Sequence* scratch) {
  for (const Item& item : in) {
    if (item.IsNode()) {
      *scratch = Atomize(in);
      return *scratch;
    }
  }
  return in;
}

bool IsSingletonBool(const Sequence& s) {
  return s.size() == 1 && s[0].IsAtomic() &&
         s[0].AsAtomic().type() == XsType::kBoolean;
}

class Vm {
 public:
  Vm(const Program& p, DynamicContext* ctx)
      : p_(p), ctx_(ctx), gov_(ctx->governor) {}

  Result<Sequence> Run();

  uint64_t retired() const { return retired_; }
  uint64_t bailouts() const { return bailouts_; }
  /// Per-thunk hit counts (empty when no thunk ever ran); indexes match
  /// Program::thunks, so callers can attribute hits to bailout reasons.
  const std::vector<uint64_t>& thunk_hits() const { return thunk_hits_; }

 private:
  /// Runs bailout thunk `idx` on the lazy engine. Unprofiled runs compile
  /// the thunk's iterator once and Reset+Drain per hit; profiled runs go
  /// through ExecuteLazy so every hit lands in the profile decorators.
  Result<Sequence> RunThunk(size_t idx) {
    ++bailouts_;
    if (thunk_hits_.empty()) thunk_hits_.resize(p_.thunks.size(), 0);
    ++thunk_hits_[idx];
    const Program::Thunk& t = p_.thunks[idx];
    if (ctx_->profile != nullptr) return ExecuteLazy(t.expr, ctx_);
    if (thunk_iters_.empty()) thunk_iters_.resize(p_.thunks.size());
    if (thunk_iters_[idx] == nullptr) {
      XQP_ASSIGN_OR_RETURN(thunk_iters_[idx],
                           CompileIterator(t.expr, nullptr));
    }
    XQP_RETURN_NOT_OK(thunk_iters_[idx]->Reset(ctx_));
    return lazy_internal::Drain(thunk_iters_[idx].get());
  }

  /// The run-level focus, mirroring Interpreter::CurrentFocusInfo with an
  /// empty focus stack. Compiled code never establishes a new focus
  /// (paths and filters bail out), so this is constant for the whole run.
  Status InitFocus() {
    if (ctx_->initial_context == nullptr) return Status::OK();
    XQP_ASSIGN_OR_RETURN(const Item* item, ctx_->initial_context->Get(0));
    if (item == nullptr) return Status::OK();
    focus_.has_focus = true;
    focus_.item = *item;
    focus_.position = 1;
    focus_.size = 1;
    return Status::OK();
  }

  struct IterState {
    Sequence domain;
    size_t pos = 0;
  };

  /// One open order-by buffer: the tuples gathered so far and the current
  /// key cells (one per order spec, positionally assigned by kSortKey).
  /// Nested order-by FLWORs stack these like the accumulators.
  struct SortState {
    std::vector<flwor::OrderedTuple> tuples;
    std::vector<flwor::OrderKey> keys;
  };

  const Program& p_;
  DynamicContext* ctx_;
  ResourceGovernor* gov_;
  FocusInfo focus_;
  std::vector<Sequence> stack_;
  std::vector<Sequence> regs_;
  std::vector<IterState> iters_;
  std::vector<Sequence> accums_;
  size_t asize_ = 0;
  std::vector<SortState> sorts_;
  size_t ssize_ = 0;
  std::vector<Sequence> args_;
  std::vector<Sequence> parts_;  // Scratch for the construct opcodes.
  std::vector<std::unique_ptr<ItemIterator>> thunk_iters_;
  std::vector<uint64_t> thunk_hits_;
  uint64_t retired_ = 0;
  uint64_t bailouts_ = 0;
};

#if XQP_VM_COMPUTED_GOTO
#define VM_CASE(name) lbl_##name
#define VM_DISPATCH() goto* kDispatch[static_cast<size_t>(ip->op)]
#define VM_BEGIN() VM_DISPATCH();
#define VM_END() return Status::Internal("vm: invalid opcode");
#else
#define VM_CASE(name) case Op::name
#define VM_DISPATCH() goto dispatch
#define VM_BEGIN() \
  dispatch:        \
  switch (ip->op) {
#define VM_END() \
  }              \
  return Status::Internal("vm: invalid opcode");
#endif

#define VM_NEXT()    \
  do {               \
    ++retired;       \
    ++ip;            \
    VM_DISPATCH();   \
  } while (0)

#define VM_GOTO(target)    \
  do {                     \
    ++retired;             \
    ip = code + (target);  \
    VM_DISPATCH();         \
  } while (0)

Result<Sequence> Vm::Run() {
  if (p_.code.empty()) {
    return Status::Internal("vm: program has no code (trivial bailout?)");
  }
  stack_.resize(size_t(p_.max_stack));
  regs_.resize(size_t(p_.num_slots));
  iters_.resize(size_t(p_.num_iters));
  XQP_RETURN_NOT_OK(InitFocus());

  const Insn* code = p_.code.data();
  const Insn* ip = code;
  Sequence* stack = stack_.data();
  Sequence* regs = regs_.data();
  IterState* iters = iters_.data();
  size_t sp = 0;
  uint64_t retired = 0;

#if XQP_VM_COMPUTED_GOTO
  // Must match the Op enum order exactly.
  static const void* kDispatch[] = {
      &&lbl_kPushConst,   &&lbl_kPushEmpty,   &&lbl_kPushContextItem,
      &&lbl_kLoadLocal,   &&lbl_kLoadGlobal,  &&lbl_kStoreLocal,
      &&lbl_kConcat,      &&lbl_kRange,       &&lbl_kArith,
      &&lbl_kUnary,       &&lbl_kValueCmp,    &&lbl_kGeneralCmp,
      &&lbl_kNodeCmp,     &&lbl_kEbv,         &&lbl_kJump,
      &&lbl_kJumpIfFalse, &&lbl_kJumpIfTrue,  &&lbl_kIterNew,
      &&lbl_kIterNext,    &&lbl_kBindPos,     &&lbl_kAccumNew,
      &&lbl_kAccumAdd,    &&lbl_kAccumEnd,    &&lbl_kCallBuiltin,
      &&lbl_kNavStep,     &&lbl_kIndexProbe,  &&lbl_kAccessExec,
      &&lbl_kConstructElem, &&lbl_kConstructAttr, &&lbl_kConstructText,
      &&lbl_kConstructNode, &&lbl_kPushRoot,  &&lbl_kSortOpen,
      &&lbl_kSortKey,     &&lbl_kSortAdd,     &&lbl_kSortTuples,
      &&lbl_kBailout,     &&lbl_kPop,         &&lbl_kHalt,
  };
#endif

  VM_BEGIN()

  VM_CASE(kPushConst) : {
    stack[sp++] = p_.const_pool[size_t(ip->a)];
    VM_NEXT();
  }

  VM_CASE(kPushEmpty) : {
    stack[sp++].clear();
    VM_NEXT();
  }

  VM_CASE(kPushContextItem) : {
    if (!focus_.has_focus) {
      return Status::DynamicError("context item is not defined");
    }
    Sequence& s = stack[sp++];
    s.clear();
    s.push_back(focus_.item);
    VM_NEXT();
  }

  VM_CASE(kLoadLocal) : {
    stack[sp++] = regs[size_t(ip->a)];
    VM_NEXT();
  }

  VM_CASE(kLoadGlobal) : {
    const LazySeqPtr& g = ctx_->globals[size_t(ip->a)];
    if (g == nullptr) {
      return Status::DynamicError("unbound variable");  // Unreachable.
    }
    XQP_ASSIGN_OR_RETURN(const Sequence* items, g->Materialize());
    stack[sp++] = *items;
    VM_NEXT();
  }

  VM_CASE(kStoreLocal) : {
    Sequence& reg = regs[size_t(ip->a)];
    reg = stack[--sp];  // Copy: both cells keep their capacity for reuse.
    if (ip->flag & 1) {
      ctx_->slots[size_t(ip->a)] = LazySeq::FromVector(reg);
    }
    VM_NEXT();
  }

  VM_CASE(kConcat) : {
    size_t n = size_t(ip->a);
    Sequence& dst = stack[sp - n];
    for (size_t i = 1; i < n; ++i) {
      Sequence& src = stack[sp - n + i];
      dst.insert(dst.end(), std::make_move_iterator(src.begin()),
                 std::make_move_iterator(src.end()));
    }
    sp -= n - 1;
    VM_NEXT();
  }

  VM_CASE(kRange) : {
    Sequence& lo_s = stack[sp - 2];
    Sequence& hi_s = stack[sp - 1];
    if (lo_s.empty() || hi_s.empty()) {
      --sp;
      stack[sp - 1].clear();
      VM_NEXT();
    }
    if (lo_s.size() != 1 || hi_s.size() != 1) {
      return Status::TypeError("range operands must be singletons");
    }
    XQP_ASSIGN_OR_RETURN(AtomicValue lo,
                         lo_s[0].Atomized().CastTo(XsType::kInteger));
    XQP_ASSIGN_OR_RETURN(AtomicValue hi,
                         hi_s[0].Atomized().CastTo(XsType::kInteger));
    Sequence out;
    for (int64_t v = lo.AsInt(); v <= hi.AsInt(); ++v) {
      if (gov_ != nullptr && (out.size() & 1023) == 0) {
        XQP_RETURN_NOT_OK(gov_->Poll());
        XQP_RETURN_NOT_OK(gov_->ChargeBytes(1024 * sizeof(Item)));
      }
      out.push_back(Item(AtomicValue::Integer(v)));
    }
    --sp;
    stack[sp - 1] = std::move(out);
    VM_NEXT();
  }

  VM_CASE(kArith) : {
    Sequence& lhs = stack[sp - 2];
    Sequence& rhs = stack[sp - 1];
    ArithOp op = static_cast<ArithOp>(ip->flag);
    if (lhs.size() == 1 && rhs.size() == 1 && lhs[0].IsAtomic() &&
        rhs[0].IsAtomic()) {
      const AtomicValue& a = lhs[0].AsAtomic();
      const AtomicValue& b = rhs[0].AsAtomic();
      // Integer fast path (div excepted: int div yields a decimal).
      if (a.type() == XsType::kInteger && b.type() == XsType::kInteger &&
          op != ArithOp::kDiv) {
        int64_t x = a.AsInt();
        int64_t y = b.AsInt();
        int64_t r = 0;
        switch (op) {
          case ArithOp::kAdd:
            if (__builtin_add_overflow(x, y, &r)) {
              return Status::DynamicError(
                  "err:FOAR0002: integer overflow in addition");
            }
            break;
          case ArithOp::kSub:
            if (__builtin_sub_overflow(x, y, &r)) {
              return Status::DynamicError(
                  "err:FOAR0002: integer overflow in subtraction");
            }
            break;
          case ArithOp::kMul:
            if (__builtin_mul_overflow(x, y, &r)) {
              return Status::DynamicError(
                  "err:FOAR0002: integer overflow in multiplication");
            }
            break;
          case ArithOp::kMod:
            if (y == 0) return Status::DynamicError("modulus by zero");
            r = (y == -1) ? 0 : x % y;  // INT64_MIN % -1 traps on x86.
            break;
          case ArithOp::kIDiv:
            if (y == 0) {
              return Status::DynamicError("integer division by zero");
            }
            if (x == INT64_MIN && y == -1) {
              return Status::DynamicError(
                  "err:FOAR0002: integer overflow in idiv");
            }
            r = x / y;
            break;
          case ArithOp::kDiv:
            break;  // Unreachable (guarded above).
        }
        lhs[0] = Item(AtomicValue::Integer(r));
        --sp;
        VM_NEXT();
      }
      // Double fast path (idiv excepted: NaN/INF and range checks).
      if (a.type() == XsType::kDouble && b.type() == XsType::kDouble &&
          op != ArithOp::kIDiv) {
        double x = a.AsRawDouble();
        double y = b.AsRawDouble();
        double r = 0;
        switch (op) {
          case ArithOp::kAdd: r = x + y; break;
          case ArithOp::kSub: r = x - y; break;
          case ArithOp::kMul: r = x * y; break;
          case ArithOp::kDiv: r = x / y; break;
          case ArithOp::kMod: r = std::fmod(x, y); break;
          case ArithOp::kIDiv: break;  // Unreachable (guarded above).
        }
        lhs[0] = Item(AtomicValue::Double(r));
        --sp;
        VM_NEXT();
      }
    }
    Sequence s1, s2;
    auto r = EvalArithmetic(op, AtomizeView(lhs, &s1), AtomizeView(rhs, &s2));
    if (!r.ok()) return r.status();
    --sp;
    stack[sp - 1] = std::move(r).value();
    VM_NEXT();
  }

  VM_CASE(kUnary) : {
    Sequence& s = stack[sp - 1];
    Sequence scratch;
    auto r = EvalUnary(ip->flag != 0, AtomizeView(s, &scratch));
    if (!r.ok()) return r.status();
    stack[sp - 1] = std::move(r).value();
    VM_NEXT();
  }

  VM_CASE(kValueCmp) : {
    Sequence& lhs = stack[sp - 2];
    Sequence& rhs = stack[sp - 1];
    CompOp op = static_cast<CompOp>(ip->flag);
    if (lhs.size() == 1 && rhs.size() == 1 && lhs[0].IsAtomic() &&
        rhs[0].IsAtomic() &&
        lhs[0].AsAtomic().type() == XsType::kInteger &&
        rhs[0].AsAtomic().type() == XsType::kInteger) {
      bool b = IntCmp(op, lhs[0].AsAtomic().AsInt(),
                      rhs[0].AsAtomic().AsInt());
      lhs[0] = Item(AtomicValue::Boolean(b));
      --sp;
      VM_NEXT();
    }
    Sequence s1, s2;
    auto r =
        EvalValueComparison(op, AtomizeView(lhs, &s1), AtomizeView(rhs, &s2));
    if (!r.ok()) return r.status();
    --sp;
    stack[sp - 1] = std::move(r).value();
    VM_NEXT();
  }

  VM_CASE(kGeneralCmp) : {
    Sequence& lhs = stack[sp - 2];
    Sequence& rhs = stack[sp - 1];
    CompOp op = static_cast<CompOp>(ip->flag);
    bool b = false;
    if (lhs.size() == 1 && rhs.size() == 1 && lhs[0].IsAtomic() &&
        rhs[0].IsAtomic() &&
        lhs[0].AsAtomic().type() == XsType::kInteger &&
        rhs[0].AsAtomic().type() == XsType::kInteger) {
      b = IntCmp(op, lhs[0].AsAtomic().AsInt(), rhs[0].AsAtomic().AsInt());
    } else {
      Sequence s1, s2;
      auto r = EvalGeneralComparison(op, AtomizeView(lhs, &s1),
                                     AtomizeView(rhs, &s2));
      if (!r.ok()) return r.status();
      b = r.value();
    }
    --sp;
    Sequence& dst = stack[sp - 1];
    dst.clear();
    dst.push_back(Item(AtomicValue::Boolean(b)));
    VM_NEXT();
  }

  VM_CASE(kNodeCmp) : {
    Sequence& lhs = stack[sp - 2];
    Sequence& rhs = stack[sp - 1];
    // Node comparisons take the raw (non-atomized) operands.
    auto r = EvalNodeComparison(static_cast<CompOp>(ip->flag), lhs, rhs);
    if (!r.ok()) return r.status();
    --sp;
    stack[sp - 1] = std::move(r).value();
    VM_NEXT();
  }

  VM_CASE(kEbv) : {
    Sequence& s = stack[sp - 1];
    if (!IsSingletonBool(s)) {
      auto r = EffectiveBooleanValue(s);
      if (!r.ok()) return r.status();
      s.clear();
      s.push_back(Item(AtomicValue::Boolean(r.value())));
    }
    VM_NEXT();
  }

  VM_CASE(kJump) : { VM_GOTO(ip->a); }

  VM_CASE(kJumpIfFalse) : {
    Sequence& s = stack[--sp];
    bool b = false;
    if (IsSingletonBool(s)) {
      b = s[0].AsAtomic().AsBool();
    } else {
      auto r = EffectiveBooleanValue(s);
      if (!r.ok()) return r.status();
      b = r.value();
    }
    if (!b) VM_GOTO(ip->a);
    VM_NEXT();
  }

  VM_CASE(kJumpIfTrue) : {
    Sequence& s = stack[--sp];
    bool b = false;
    if (IsSingletonBool(s)) {
      b = s[0].AsAtomic().AsBool();
    } else {
      auto r = EffectiveBooleanValue(s);
      if (!r.ok()) return r.status();
      b = r.value();
    }
    if (b) VM_GOTO(ip->a);
    VM_NEXT();
  }

  VM_CASE(kIterNew) : {
    IterState& it = iters[size_t(ip->a)];
    it.domain = std::move(stack[--sp]);
    it.pos = 0;
    VM_NEXT();
  }

  VM_CASE(kIterNext) : {
    // Every loop back-edge lands here: the cooperative cancellation point.
    if (gov_ != nullptr) XQP_RETURN_NOT_OK(gov_->Poll());
    IterState& it = iters[size_t(ip->a)];
    if (it.pos >= it.domain.size()) VM_GOTO(ip->b);
    const Item& item = it.domain[it.pos++];
    if (ip->c >= 0) {
      Sequence& reg = regs[size_t(ip->c)];
      reg.clear();
      reg.push_back(item);
      if (ip->flag & 1) {
        ctx_->slots[size_t(ip->c)] = LazySeq::FromItem(item);
      }
    }
    VM_NEXT();
  }

  VM_CASE(kBindPos) : {
    IterState& it = iters[size_t(ip->a)];
    Item pos_item(AtomicValue::Integer(int64_t(it.pos)));  // 1-based.
    Sequence& reg = regs[size_t(ip->b)];
    reg.clear();
    reg.push_back(pos_item);
    if (ip->flag & 1) {
      ctx_->slots[size_t(ip->b)] = LazySeq::FromItem(std::move(pos_item));
    }
    VM_NEXT();
  }

  VM_CASE(kAccumNew) : {
    if (asize_ == accums_.size()) accums_.emplace_back();
    accums_[asize_].clear();
    ++asize_;
    VM_NEXT();
  }

  VM_CASE(kAccumAdd) : {
    Sequence& s = stack[--sp];
    Sequence& acc = accums_[asize_ - 1];
    acc.insert(acc.end(), std::make_move_iterator(s.begin()),
               std::make_move_iterator(s.end()));
    VM_NEXT();
  }

  VM_CASE(kAccumEnd) : {
    --asize_;
    stack[sp++] = std::move(accums_[asize_]);
    VM_NEXT();
  }

  VM_CASE(kCallBuiltin) : {
    size_t argc = size_t(ip->b);
    args_.clear();
    for (size_t i = 0; i < argc; ++i) {
      args_.push_back(std::move(stack[sp - argc + i]));
    }
    sp -= argc;
    auto r = CallBuiltin(static_cast<Builtin>(ip->a), args_, ctx_, focus_);
    if (!r.ok()) return r.status();
    stack[sp++] = std::move(r).value();
    VM_NEXT();
  }

  VM_CASE(kNavStep) : {
    // One axis walk over the whole origin sequence: the compiled twin of
    // the lazy PathIt + StepIt pair for a bare-step rhs. Governor parity:
    // one cooperative poll per origin item (plus the trailing exhaustion
    // poll), and byte charges only at blocking (materialization) levels —
    // streaming-elided levels never buffer in the lazy engine and charge
    // nothing, so budget trips stay deterministic across backends.
    const Program::PathPlan& plan = p_.paths[size_t(ip->a)];
    const bool blocking = plan.path->needs_sort || plan.path->needs_dedup;
    Sequence& in = stack[sp - 1];
    Sequence out;
    for (const Item& origin : in) {
      if (gov_ != nullptr) XQP_RETURN_NOT_OK(gov_->Poll());
      if (!origin.IsNode()) {
        return Status::TypeError("axis step requires a node context item");
      }
      size_t before = out.size();
      CollectAxis(origin.AsNode(), plan.step->axis, plan.step->test, &out);
      if (blocking && gov_ != nullptr) {
        XQP_RETURN_NOT_OK(
            gov_->ChargeBytes((out.size() - before) * sizeof(Item)));
      }
    }
    if (gov_ != nullptr) XQP_RETURN_NOT_OK(gov_->Poll());
    if (!out.empty()) {
      if (plan.path->needs_sort) {
        XQP_RETURN_NOT_OK(SortDocOrderDistinct(
            &out, ctx_->parallel_threshold, ctx_->num_threads));
      } else if (plan.path->needs_dedup) {
        XQP_RETURN_NOT_OK(DedupNodesPreservingOrder(&out));
      }
    }
    stack[sp - 1] = std::move(out);
    VM_NEXT();
  }

  VM_CASE(kIndexProbe) : VM_CASE(kAccessExec) : {
    // Offer the marked chain to the access-path selector (synopsis /
    // value-index / structural-join strategies). An answer skips the
    // navigation code entirely — like the lazy IndexPathIt, the lhs
    // (including doc()) is never evaluated on the indexed fast path. A
    // decline falls through to the navigation instructions.
    const Program::PathPlan& plan = p_.paths[size_t(ip->a)];
    auto r = TryExecuteAccessPath(plan.path, ctx_);
    if (!r.ok()) return r.status();
    if (r.value().has_value()) {
      stack[sp++] = std::move(*r.value());
      VM_GOTO(ip->b);
    }
    VM_NEXT();
  }

  VM_CASE(kConstructElem) : VM_CASE(kConstructAttr) : {
    // Assemble the constructor from its already-evaluated children: the
    // computed name (when present) sits below the content parts. Building
    // goes through the shared construct:: path, so the scratch
    // DocumentBuilder's byte charges (ChargeNode via the thread-local
    // governor), whitespace joining, namespace handling, and error strings
    // are identical to both interpreters.
    const bool is_elem = ip->op == Op::kConstructElem;
    const Expr* ce = p_.ctors[size_t(ip->a)].expr;
    size_t n = size_t(ip->b);
    Sequence* children = stack + (sp - n);
    const bool computed = is_elem
        ? static_cast<const ElementCtorExpr*>(ce)->computed_name
        : static_cast<const AttributeCtorExpr*>(ce)->computed_name;
    QName name = is_elem ? static_cast<const ElementCtorExpr*>(ce)->name
                         : static_cast<const AttributeCtorExpr*>(ce)->name;
    size_t start = 0;
    if (computed) {
      auto named = ComputedName(children[0]);
      if (!named.ok()) return named.status();
      name = std::move(named).value();
      start = 1;
    }
    parts_.clear();
    for (size_t i = start; i < n; ++i) {
      parts_.push_back(std::move(children[i]));
    }
    auto built = is_elem
        ? construct::Element(
              name, static_cast<const ElementCtorExpr*>(ce)->ns_decls,
              parts_, ctx_)
        : construct::Attribute(name, parts_, ctx_);
    if (!built.ok()) return built.status();
    sp -= n;
    Sequence& dst = stack[sp++];
    dst.clear();
    dst.push_back(std::move(built).value());
    VM_NEXT();
  }

  VM_CASE(kConstructText) : {
    auto r = construct::Text(stack[sp - 1], ctx_);
    if (!r.ok()) return r.status();
    stack[sp - 1] = std::move(r).value();
    VM_NEXT();
  }

  VM_CASE(kConstructNode) : {
    Sequence& content = stack[sp - 1];
    auto built = [&]() -> Result<Item> {
      switch (ip->flag) {
        case 0:
          return construct::Comment(content, ctx_);
        case 1:
          return construct::Pi(
              static_cast<const PiCtorExpr*>(p_.ctors[size_t(ip->a)].expr)
                  ->target,
              content, ctx_);
        default: {
          parts_.clear();
          parts_.push_back(std::move(content));
          return construct::DocumentNode(parts_, ctx_);
        }
      }
    }();
    if (!built.ok()) return built.status();
    Sequence& dst = stack[sp - 1];
    dst.clear();
    dst.push_back(std::move(built).value());
    VM_NEXT();
  }

  VM_CASE(kPushRoot) : {
    if (!focus_.has_focus) {
      return Status::DynamicError("context item is not defined");
    }
    if (!focus_.item.IsNode()) {
      return Status::TypeError("leading '/' requires a node context item");
    }
    Sequence& s = stack[sp++];
    s.clear();
    s.push_back(Item(focus_.item.AsNode().Root()));
    VM_NEXT();
  }

  VM_CASE(kSortOpen) : {
    if (ssize_ == sorts_.size()) sorts_.emplace_back();
    SortState& st = sorts_[ssize_++];
    st.tuples.clear();
    st.keys.assign(p_.sorts[size_t(ip->a)].specs.size(), flwor::OrderKey{});
    VM_NEXT();
  }

  VM_CASE(kSortKey) : {
    Sequence& raw = stack[--sp];
    auto key = flwor::MakeOrderKey(raw);
    if (!key.ok()) return key.status();
    sorts_[ssize_ - 1].keys[size_t(ip->a)] = std::move(key).value();
    VM_NEXT();
  }

  VM_CASE(kSortAdd) : {
    // One buffered tuple per hit: keep huge tuple streams cancelable. The
    // buffer itself is uncharged, matching the interpreter's tuple vector.
    if (gov_ != nullptr) XQP_RETURN_NOT_OK(gov_->Poll());
    SortState& st = sorts_[ssize_ - 1];
    flwor::OrderedTuple t;
    t.keys = st.keys;
    t.result = std::move(stack[--sp]);
    st.tuples.push_back(std::move(t));
    VM_NEXT();
  }

  VM_CASE(kSortTuples) : {
    SortState& st = sorts_[ssize_ - 1];
    XQP_RETURN_NOT_OK(
        flwor::SortTuples(&st.tuples, p_.sorts[size_t(ip->a)].specs));
    Sequence out;
    for (flwor::OrderedTuple& t : st.tuples) {
      out.insert(out.end(), std::make_move_iterator(t.result.begin()),
                 std::make_move_iterator(t.result.end()));
    }
    --ssize_;
    stack[sp++] = std::move(out);
    VM_NEXT();
  }

  VM_CASE(kBailout) : {
    auto r = RunThunk(size_t(ip->a));
    if (!r.ok()) return r.status();
    stack[sp++] = std::move(r).value();
    VM_NEXT();
  }

  VM_CASE(kPop) : {
    --sp;
    VM_NEXT();
  }

  VM_CASE(kHalt) : {
    retired_ = retired + 1;
    return std::move(stack[--sp]);
  }

  VM_END()
}

#undef VM_CASE
#undef VM_DISPATCH
#undef VM_BEGIN
#undef VM_END
#undef VM_NEXT
#undef VM_GOTO

/// "vm.bailout.<reason>" with the EXPLAIN reason string kebab-cased
/// ("user function call" -> "vm.bailout.user-function-call"); the reason
/// set is exactly the set of [bailout: ...] annotations.
std::string BailoutMetricName(const std::string& reason) {
  std::string name = "vm.bailout.";
  for (char c : reason) {
    name.push_back((c == ' ' || c == '/') ? '-' : c);
  }
  return name;
}

}  // namespace

Result<Sequence> RunProgram(const Program& program, DynamicContext* ctx) {
  Vm vm(program, ctx);
  Result<Sequence> out = vm.Run();
  if (metrics::Enabled()) {
    static metrics::Counter* instructions =
        metrics::MetricsRegistry::Global().counter("vm.instructions");
    static metrics::Counter* bailouts =
        metrics::MetricsRegistry::Global().counter("vm.bailouts");
    if (vm.retired() != 0) instructions->Add(vm.retired());
    if (vm.bailouts() != 0) {
      bailouts->Add(vm.bailouts());
      // Per-reason breakdown: thunk hit counts keyed by the thunk table.
      const std::vector<uint64_t>& hits = vm.thunk_hits();
      for (size_t i = 0; i < hits.size(); ++i) {
        if (hits[i] == 0) continue;
        metrics::MetricsRegistry::Global()
            .counter(BailoutMetricName(program.thunks[i].reason))
            ->Add(hits[i]);
      }
    }
  }
  return out;
}

}  // namespace vm
}  // namespace xqp
