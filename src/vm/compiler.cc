#include "vm/compiler.h"

#include <algorithm>
#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

#include "base/fault.h"
#include "base/metrics.h"
#include "index/index_planner.h"
#include "opt/const_fold.h"
#include "opt/properties.h"
#include "query/expr.h"

namespace xqp {
namespace vm {

std::string_view OpName(Op op) {
  switch (op) {
    case Op::kPushConst: return "push-const";
    case Op::kPushEmpty: return "push-empty";
    case Op::kPushContextItem: return "push-context-item";
    case Op::kLoadLocal: return "load-local";
    case Op::kLoadGlobal: return "load-global";
    case Op::kStoreLocal: return "store-local";
    case Op::kConcat: return "concat";
    case Op::kRange: return "range";
    case Op::kArith: return "arith";
    case Op::kUnary: return "unary";
    case Op::kValueCmp: return "value-cmp";
    case Op::kGeneralCmp: return "general-cmp";
    case Op::kNodeCmp: return "node-cmp";
    case Op::kEbv: return "ebv";
    case Op::kJump: return "jump";
    case Op::kJumpIfFalse: return "jump-if-false";
    case Op::kJumpIfTrue: return "jump-if-true";
    case Op::kIterNew: return "iter-new";
    case Op::kIterNext: return "iter-next";
    case Op::kBindPos: return "bind-pos";
    case Op::kAccumNew: return "accum-new";
    case Op::kAccumAdd: return "accum-add";
    case Op::kAccumEnd: return "accum-end";
    case Op::kCallBuiltin: return "call-builtin";
    case Op::kNavStep: return "nav-step";
    case Op::kIndexProbe: return "index-probe";
    case Op::kAccessExec: return "access-exec";
    case Op::kConstructElem: return "construct-elem";
    case Op::kConstructAttr: return "construct-attr";
    case Op::kConstructText: return "construct-text";
    case Op::kConstructNode: return "construct-node";
    case Op::kPushRoot: return "push-root";
    case Op::kSortOpen: return "sort-open";
    case Op::kSortKey: return "sort-key";
    case Op::kSortAdd: return "sort-add";
    case Op::kSortTuples: return "sort-tuples";
    case Op::kBailout: return "bailout";
    case Op::kPop: return "pop";
    case Op::kHalt: return "halt";
  }
  return "?";
}

namespace {

class Compiler {
 public:
  explicit Compiler(const ParsedModule& module)
      : module_(module), p_(std::make_shared<Program>()) {}

  std::shared_ptr<const Program> Run() {
    p_->num_slots = module_.num_slots;
    // Pool entries 0/1: the canonical booleans (kConstFalse / kConstTrue).
    p_->const_pool.push_back(Sequence{Item(AtomicValue::Boolean(false))});
    p_->const_pool.push_back(Sequence{Item(AtomicValue::Boolean(true))});

    const Expr* body = module_.body.get();
    if (const char* reason = Uncompilable(*body)) {
      // The whole plan is one bailout: the engine skips the VM and runs
      // the lazy path directly (the thunk is kept for EXPLAIN).
      p_->trivial_bailout = true;
      p_->thunks.push_back({body, reason});
    } else {
      p_->root = body;
      Compile(*body);
      Emit(Op::kHalt);
      PatchMirrors();
    }

    p_->max_stack = std::max(max_depth_, 1);
    uint64_t bytes = 0;
    for (const Sequence& s : p_->const_pool) {
      bytes += sizeof(Sequence) + s.size() * (sizeof(Item) + 16);
    }
    p_->const_pool_bytes = bytes;
    return p_;
  }

 private:
  // ---- emission helpers ----

  int Emit(Op op, uint8_t flag = 0, int32_t a = 0, int32_t b = 0,
           int32_t c = 0) {
    p_->code.push_back(Insn{op, flag, a, b, c});
    return static_cast<int>(p_->code.size()) - 1;
  }

  int Here() const { return static_cast<int>(p_->code.size()); }
  void PatchTarget(int pc, int target) { p_->code[size_t(pc)].a = target; }

  /// Operand-stack accounting. Linear over the emitted code; the two
  /// branchy constructs (if/logical/quantified early exits) correct the
  /// depth manually where paths merge, so `depth_` is exact at every merge
  /// point and `max_depth_` is (at worst conservatively) correct.
  void Push(int n = 1) {
    depth_ += n;
    max_depth_ = std::max(max_depth_, depth_);
  }
  void Pop(int n = 1) { depth_ -= n; }

  int AddConst(Sequence s) {
    if (s.size() == 1 && s[0].IsAtomic() &&
        s[0].AsAtomic().type() == XsType::kBoolean) {
      return s[0].AsAtomic().AsBool() ? kConstTrue : kConstFalse;
    }
    p_->const_pool.push_back(std::move(s));
    return static_cast<int>(p_->const_pool.size()) - 1;
  }

  void EmitPushConst(int idx) {
    Emit(Op::kPushConst, 0, idx);
    Push();
  }

  void EmitBailout(const Expr& e, const char* reason) {
    int idx = static_cast<int>(p_->thunks.size());
    p_->thunks.push_back({&e, reason});
    Emit(Op::kBailout, 0, idx);
    Push();
  }

  /// Shared with the rewriter: pure literal arithmetic/comparison subtrees
  /// become pool constants even in unoptimized plans.
  bool TryFold(const Expr& e) {
    std::optional<Sequence> folded = TryFoldLiteralNode(e);
    if (!folded.has_value()) return false;
    EmitPushConst(AddConst(std::move(*folded)));
    return true;
  }

  bool IsBound(int slot) const {
    return std::find(bound_.begin(), bound_.end(), slot) != bound_.end();
  }

  // ---- compilability ----

  /// Null when `e` lowers to bytecode at this point (given the binders
  /// compiled so far); otherwise the bailout reason shown in EXPLAIN.
  const char* Uncompilable(const Expr& e) const {
    switch (e.kind()) {
      case ExprKind::kLiteral:
      case ExprKind::kContextItem:
      case ExprKind::kSequence:
      case ExprKind::kRange:
      case ExprKind::kArithmetic:
      case ExprKind::kUnary:
      case ExprKind::kComparison:
      case ExprKind::kLogical:
      case ExprKind::kIf:
      case ExprKind::kQuantified:
        return nullptr;
      case ExprKind::kVarRef: {
        const auto& v = static_cast<const VarRefExpr&>(e);
        if (v.is_global || IsBound(v.slot)) return nullptr;
        // A local whose binder is not in the compiled region (e.g. bound
        // inside an enclosing thunk); the lazy engine resolves it against
        // ctx->slots, reproducing the exact runtime error when unbound.
        return "free variable";
      }
      case ExprKind::kFlwor:
      case ExprKind::kRoot:
        return nullptr;
      case ExprKind::kFunctionCall:
        return static_cast<const FunctionCallExpr&>(e).builtin >= 0
                   ? nullptr
                   : "user function call";
      case ExprKind::kPath: {
        // A path lowers when the index planner can probe it (the runtime
        // navigation twin becomes a cold fallback thunk) or when its step
        // is a bare axis walk (kNavStep; the lhs compiles recursively,
        // worst case as its own thunk). Everything else — filter or step
        // combinators the ISA has no opcode for — still bails out whole.
        const auto& p = static_cast<const PathExpr&>(e);
        if (p.index_candidate) return nullptr;
        if (p.NumChildren() == 2 &&
            p.child(1)->kind() == ExprKind::kStep) {
          return nullptr;
        }
        return "path";
      }
      case ExprKind::kStep: return "path step";
      case ExprKind::kFilter: return "filter";
      case ExprKind::kTypeswitch: return "typeswitch";
      case ExprKind::kInstanceOf: return "instance of";
      case ExprKind::kTreatAs: return "treat as";
      case ExprKind::kCastAs: return "cast";
      case ExprKind::kCastableAs: return "castable";
      case ExprKind::kUnion: return "union";
      case ExprKind::kIntersectExcept: return "intersect/except";
      case ExprKind::kElementCtor:
      case ExprKind::kAttributeCtor:
      case ExprKind::kTextCtor:
      case ExprKind::kCommentCtor:
      case ExprKind::kPiCtor:
      case ExprKind::kDocumentCtor:
        return nullptr;
      case ExprKind::kTryCatch: return "try/catch";
    }
    return "unknown expression";
  }

  // ---- lowering ----

  void Compile(const Expr& e) {
    if (const char* reason = Uncompilable(e)) {
      EmitBailout(e, reason);
      return;
    }
    switch (e.kind()) {
      case ExprKind::kLiteral:
        EmitPushConst(AddConst(
            Sequence{Item(static_cast<const LiteralExpr&>(e).value)}));
        return;
      case ExprKind::kVarRef: {
        const auto& v = static_cast<const VarRefExpr&>(e);
        Emit(v.is_global ? Op::kLoadGlobal : Op::kLoadLocal, 0, v.slot);
        Push();
        return;
      }
      case ExprKind::kContextItem:
        Emit(Op::kPushContextItem);
        Push();
        return;
      case ExprKind::kRoot:
        Emit(Op::kPushRoot);
        Push();
        return;
      case ExprKind::kSequence: {
        int n = static_cast<int>(e.NumChildren());
        if (n == 0) {
          Emit(Op::kPushEmpty);
          Push();
          return;
        }
        for (int i = 0; i < n; ++i) Compile(*e.child(size_t(i)));
        if (n > 1) {
          Emit(Op::kConcat, 0, n);
          Pop(n - 1);
        }
        return;
      }
      case ExprKind::kRange:
        Compile(*e.child(0));
        Compile(*e.child(1));
        Emit(Op::kRange);
        Pop();
        return;
      case ExprKind::kArithmetic: {
        if (TryFold(e)) return;
        Compile(*e.child(0));
        Compile(*e.child(1));
        Emit(Op::kArith,
             static_cast<uint8_t>(static_cast<const ArithmeticExpr&>(e).op));
        Pop();
        return;
      }
      case ExprKind::kUnary: {
        if (TryFold(e)) return;
        Compile(*e.child(0));
        Emit(Op::kUnary,
             static_cast<const UnaryExpr&>(e).negate ? 1 : 0);
        return;
      }
      case ExprKind::kComparison: {
        if (TryFold(e)) return;
        CompOp op = static_cast<const ComparisonExpr&>(e).op;
        Compile(*e.child(0));
        Compile(*e.child(1));
        Op lowered = IsValueComp(op)     ? Op::kValueCmp
                     : IsGeneralComp(op) ? Op::kGeneralCmp
                                         : Op::kNodeCmp;
        Emit(lowered, static_cast<uint8_t>(op));
        Pop();
        return;
      }
      case ExprKind::kLogical:
        CompileLogical(static_cast<const LogicalExpr&>(e));
        return;
      case ExprKind::kIf:
        CompileIf(e);
        return;
      case ExprKind::kPath:
        CompilePath(static_cast<const PathExpr&>(e));
        return;
      case ExprKind::kFlwor:
        CompileFlwor(static_cast<const FlworExpr&>(e));
        return;
      case ExprKind::kQuantified:
        CompileQuantified(static_cast<const QuantifiedExpr&>(e));
        return;
      case ExprKind::kFunctionCall: {
        const auto& fc = static_cast<const FunctionCallExpr&>(e);
        int argc = static_cast<int>(e.NumChildren());
        for (int i = 0; i < argc; ++i) Compile(*e.child(size_t(i)));
        Emit(Op::kCallBuiltin, 0, fc.builtin, argc);
        Pop(argc);
        Push();
        return;
      }
      case ExprKind::kElementCtor:
      case ExprKind::kAttributeCtor:
      case ExprKind::kTextCtor:
      case ExprKind::kCommentCtor:
      case ExprKind::kPiCtor:
      case ExprKind::kDocumentCtor:
        CompileCtor(e);
        return;
      default:
        // Unreachable: Uncompilable() covered everything else.
        EmitBailout(e, "unknown expression");
        return;
    }
  }

  void CompileLogical(const LogicalExpr& e) {
    Compile(*e.child(0));
    int j_short = Emit(e.is_and ? Op::kJumpIfFalse : Op::kJumpIfTrue);
    Pop();
    Compile(*e.child(1));
    Emit(Op::kEbv);
    int j_end = Emit(Op::kJump);
    Pop();  // The rhs path merges with the short-circuit push below.
    PatchTarget(j_short, Here());
    EmitPushConst(e.is_and ? kConstFalse : kConstTrue);
    PatchTarget(j_end, Here());
  }

  void CompileIf(const Expr& e) {
    Compile(*e.child(0));
    int j_else = Emit(Op::kJumpIfFalse);
    Pop();
    Compile(*e.child(1));
    int j_end = Emit(Op::kJump);
    Pop();  // then/else branches merge.
    PatchTarget(j_else, Here());
    Compile(*e.child(2));
    PatchTarget(j_end, Here());
  }

  int AddPathPlan(const PathExpr* path, const StepExpr* step) {
    p_->paths.push_back({path, step});
    return static_cast<int>(p_->paths.size()) - 1;
  }

  /// Path lowering. Layout for an index-marked chain:
  ///   index-probe/access-exec  --answered--> JOIN
  ///   <lhs>                (only reached when the probe declines)
  ///   nav-step             (or a navigation thunk for filtered chains)
  ///   JOIN:
  /// The probe jumps over the lhs entirely when the index answers, so —
  /// exactly like the lazy IndexPathIt — doc() is never evaluated on the
  /// indexed fast path. Each PathExpr level probes at most once per
  /// execution: the navigation thunk is a Clone with the top-level
  /// index_candidate cleared (inner levels keep their marks, matching the
  /// lazy engine's per-level IndexPathIt nesting).
  void CompilePath(const PathExpr& e) {
    const StepExpr* step =
        e.NumChildren() == 2 && e.child(1)->kind() == ExprKind::kStep
            ? static_cast<const StepExpr*>(e.child(1))
            : nullptr;
    int probe_pc = -1;
    if (e.index_candidate) {
      std::optional<IndexQuery> q = PlanIndexPath(e);
      Op op = q.has_value() && q->HasPredicates() ? Op::kIndexProbe
                                                  : Op::kAccessExec;
      probe_pc = Emit(op, 0, AddPathPlan(&e, nullptr));
      Push();  // The answered edge pushes the result and jumps to JOIN.
      Pop();   // The fall-through edge pushes nothing.
    }
    if (step != nullptr) {
      Compile(*e.child(0));
      Emit(Op::kNavStep, 0, AddPathPlan(&e, step));
      // Net stack effect 0: pops the origin, pushes the step output.
    } else {
      // Filtered chain: navigation falls back to the lazy path machinery,
      // minus the probe this level already attempted.
      auto clone = e.Clone();
      static_cast<PathExpr*>(clone.get())->index_candidate = false;
      int idx = static_cast<int>(p_->thunks.size());
      p_->thunks.push_back({clone.get(), "path"});
      p_->owned_exprs.push_back(std::move(clone));
      Emit(Op::kBailout, 0, idx);
      Push();
    }
    if (probe_pc >= 0) p_->code[size_t(probe_pc)].b = Here();
  }

  int AddCtorPlan(const Expr* e) {
    p_->ctors.push_back({e});
    return static_cast<int>(p_->ctors.size()) - 1;
  }

  /// Constructor lowering: the children (computed name first when present,
  /// then the content parts) evaluate onto the stack in order, then one
  /// construct opcode pops them all and pushes the built node. Assembly
  /// itself is the shared construct:: path, so namespace handling,
  /// whitespace joining, governor byte charges, and error strings are the
  /// interpreter's own.
  void CompileCtor(const Expr& e) {
    int n = static_cast<int>(e.NumChildren());
    for (int i = 0; i < n; ++i) Compile(*e.child(size_t(i)));
    switch (e.kind()) {
      case ExprKind::kElementCtor:
        Emit(Op::kConstructElem, 0, AddCtorPlan(&e), n);
        break;
      case ExprKind::kAttributeCtor:
        Emit(Op::kConstructAttr, 0, AddCtorPlan(&e), n);
        break;
      case ExprKind::kTextCtor:
        Emit(Op::kConstructText);
        break;
      case ExprKind::kCommentCtor:
        Emit(Op::kConstructNode, 0);
        break;
      case ExprKind::kPiCtor:
        Emit(Op::kConstructNode, 1, AddCtorPlan(&e));
        break;
      case ExprKind::kDocumentCtor:
        Emit(Op::kConstructNode, 2);
        break;
      default:
        break;  // Unreachable: only ctor kinds are dispatched here.
    }
    Pop(n);
    Push();
  }

  /// Tuple-at-a-time FLWOR loop nest. Layout:
  ///   accum-new
  ///   <domain 0> iter-new 0
  ///   L0: iter-next 0 -> exit to END
  ///     [bind-pos] ... <domain 1> iter-new 1
  ///     L1: iter-next 1 -> exit to L0      (re-runs outer continue)
  ///       <let values / where gates -> jump L1>
  ///       <return> accum-add
  ///       jump L1
  ///   END: accum-end
  /// Jumping to an outer iter-next re-executes its bind-pos and the inner
  /// domain code, so inner domains are re-evaluated per outer tuple —
  /// exactly the interpreter's recursive tuple stream.
  ///
  /// With order-by clauses the accumulator becomes a sort buffer: sort-open
  /// replaces accum-new, each order-spec clause compiles its key expression
  /// at clause position followed by sort-key (positional assignment, so
  /// re-entering an outer loop refreshes exactly the keys whose clauses
  /// re-run), the return value lands via sort-add, and END stable-sorts the
  /// buffered tuples and pushes the concatenation (sort-tuples).
  void CompileFlwor(const FlworExpr& e) {
    int sort_plan = -1;
    for (const FlworExpr::Clause& c : e.clauses) {
      if (c.type != FlworExpr::Clause::Type::kOrderSpec) continue;
      if (sort_plan < 0) {
        p_->sorts.emplace_back();
        sort_plan = static_cast<int>(p_->sorts.size()) - 1;
      }
      p_->sorts[size_t(sort_plan)].specs.push_back(
          {c.descending, c.empty_least});
    }
    const bool has_order = sort_plan >= 0;
    if (has_order) {
      Emit(Op::kSortOpen, 0, sort_plan);
    } else {
      Emit(Op::kAccumNew);
    }
    size_t bound_mark = bound_.size();
    int iters_entered = 0;
    int key_index = 0;
    std::vector<int> loop_pcs;    // kIterNext pcs, outermost first.
    std::vector<int> end_patches; // where-fails with no enclosing for.
    for (size_t ci = 0; ci < e.clauses.size(); ++ci) {
      const FlworExpr::Clause& c = e.clauses[ci];
      switch (c.type) {
        case FlworExpr::Clause::Type::kFor: {
          Compile(*e.child(ci));
          int iter = iter_depth_++;
          ++iters_entered;
          p_->num_iters = std::max(p_->num_iters, iter_depth_);
          Emit(Op::kIterNew, 0, iter);
          Pop();
          loop_pcs.push_back(Emit(Op::kIterNext, 0, iter, 0, c.var_slot));
          bound_.push_back(c.var_slot);
          if (c.pos_slot >= 0) {
            Emit(Op::kBindPos, 0, iter, c.pos_slot);
            bound_.push_back(c.pos_slot);
          }
          break;
        }
        case FlworExpr::Clause::Type::kLet:
          Compile(*e.child(ci));
          Emit(Op::kStoreLocal, 0, c.var_slot);
          Pop();
          bound_.push_back(c.var_slot);
          break;
        case FlworExpr::Clause::Type::kWhere: {
          Compile(*e.child(ci));
          int j = Emit(Op::kJumpIfFalse);
          Pop();
          if (loop_pcs.empty()) {
            end_patches.push_back(j);  // No tuple loop: skip to the end.
          } else {
            PatchTarget(j, loop_pcs.back());
          }
          break;
        }
        case FlworExpr::Clause::Type::kOrderSpec:
          Compile(*e.child(ci));
          Emit(Op::kSortKey, 0, key_index++);
          Pop();
          break;
      }
    }
    Compile(*e.return_expr());
    Emit(has_order ? Op::kSortAdd : Op::kAccumAdd);
    Pop();
    if (!loop_pcs.empty()) {
      Emit(Op::kJump, 0, loop_pcs.back());
      // Exit chain: loop i resumes loop i-1; the outermost exits the nest.
      for (size_t i = loop_pcs.size() - 1; i >= 1; --i) {
        p_->code[size_t(loop_pcs[i])].b = loop_pcs[i - 1];
      }
      p_->code[size_t(loop_pcs[0])].b = Here();
    }
    int end_pc = Here();
    if (has_order) {
      Emit(Op::kSortTuples, 0, sort_plan);
    } else {
      Emit(Op::kAccumEnd);
    }
    Push();
    for (int j : end_patches) PatchTarget(j, end_pc);
    bound_.resize(bound_mark);
    iter_depth_ -= iters_entered;
  }

  /// some/every nest with short-circuit exits. A satisfying (some) /
  /// refuting (every) tuple jumps straight to the result push; exhausting
  /// the outermost binding lands on the default (false for some, true for
  /// every) — the interpreter's `if (b != is_every) return b` loop.
  void CompileQuantified(const QuantifiedExpr& e) {
    const Expr& satisfies = *e.child(e.NumChildren() - 1);
    if (e.bindings.empty()) {  // Degenerate; the parser never emits it.
      Compile(satisfies);
      Emit(Op::kEbv);
      return;
    }
    size_t bound_mark = bound_.size();
    std::vector<int> loop_pcs;
    for (size_t bi = 0; bi < e.bindings.size(); ++bi) {
      Compile(*e.child(bi));
      int iter = iter_depth_++;
      p_->num_iters = std::max(p_->num_iters, iter_depth_);
      Emit(Op::kIterNew, 0, iter);
      Pop();
      loop_pcs.push_back(
          Emit(Op::kIterNext, 0, iter, 0, e.bindings[bi].var_slot));
      bound_.push_back(e.bindings[bi].var_slot);
    }
    Compile(satisfies);
    Emit(e.is_every ? Op::kJumpIfTrue : Op::kJumpIfFalse, 0,
         loop_pcs.back());
    Pop();
    EmitPushConst(e.is_every ? kConstFalse : kConstTrue);
    int j_end = Emit(Op::kJump);
    Pop();  // Early-exit path merges with the default push below.
    for (size_t i = loop_pcs.size() - 1; i >= 1; --i) {
      p_->code[size_t(loop_pcs[i])].b = loop_pcs[i - 1];
    }
    p_->code[size_t(loop_pcs[0])].b = Here();
    EmitPushConst(e.is_every ? kConstTrue : kConstFalse);
    PatchTarget(j_end, Here());
    bound_.resize(bound_mark);
    iter_depth_ -= static_cast<int>(e.bindings.size());
  }

  // ---- dual-store patching ----

  /// Compiled bindings live in VM registers only; slots that some bailout
  /// thunk reads are additionally mirrored into ctx->slots at binding time
  /// (flag bit 0 on kStoreLocal / kIterNext / kBindPos). Mirroring every
  /// slot a thunk mentions — including ones the thunk rebinds internally —
  /// is deliberate: slot reuse across disjoint scopes makes subtracting
  /// thunk-internal binders unsafe, and over-mirroring is harmless.
  void PatchMirrors() {
    std::vector<int> used;
    for (const Program::Thunk& t : p_->thunks) {
      CollectUsedSlots(t.expr, &used);
    }
    if (used.empty()) return;
    std::unordered_set<int> mirror(used.begin(), used.end());
    for (Insn& insn : p_->code) {
      switch (insn.op) {
        case Op::kStoreLocal:
          if (mirror.count(insn.a) != 0) insn.flag |= 1;
          break;
        case Op::kIterNext:
          if (insn.c >= 0 && mirror.count(insn.c) != 0) insn.flag |= 1;
          break;
        case Op::kBindPos:
          if (mirror.count(insn.b) != 0) insn.flag |= 1;
          break;
        default:
          break;
      }
    }
  }

  const ParsedModule& module_;
  std::shared_ptr<Program> p_;
  std::vector<int> bound_;  // Local slots bound by compiled binders.
  int iter_depth_ = 0;      // Live loop nesting; iter registers index by it.
  int depth_ = 0;           // Current operand-stack depth.
  int max_depth_ = 0;
};

}  // namespace

Result<std::shared_ptr<const Program>> CompileProgram(
    const ParsedModule& module) {
  if (fault::Armed()) XQP_RETURN_NOT_OK(fault::MaybeInject("vm.compile"));
  Compiler compiler(module);
  std::shared_ptr<const Program> program = compiler.Run();
  if (metrics::Enabled()) {
    static metrics::Counter* compiles =
        metrics::MetricsRegistry::Global().counter("vm.compiles");
    compiles->Increment();
  }
  return program;
}

}  // namespace vm
}  // namespace xqp
