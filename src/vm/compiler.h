#ifndef XQP_VM_COMPILER_H_
#define XQP_VM_COMPILER_H_

#include <memory>

#include "base/status.h"
#include "query/static_context.h"
#include "vm/bytecode.h"

namespace xqp {
namespace vm {

/// Lowers the (already optimized) main expression of `module` into a flat
/// bytecode Program. Compilation is total: constructs outside the ISA
/// become bailout thunks, never errors — the only failure mode is the
/// "vm.compile" fault-injection site. The returned Program borrows Expr
/// pointers from `module` and must not outlive it; it is immutable and
/// safe to share across concurrent executions.
Result<std::shared_ptr<const Program>> CompileProgram(
    const ParsedModule& module);

}  // namespace vm
}  // namespace xqp

#endif  // XQP_VM_COMPILER_H_
