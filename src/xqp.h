#ifndef XQP_XQP_H_
#define XQP_XQP_H_

/// Umbrella header for the xqp library: the engine facade plus the public
/// pieces a typical embedder touches. Include narrower headers directly for
/// finer control (see README.md "Architecture").

#include "base/status.h"           // Status / Result
#include "engine.h"                // XQueryEngine / CompiledQuery / ResultStream
#include "exec/item.h"             // Item / Sequence
#include "join/structural_join.h"  // Structural join primitives
#include "join/twig.h"             // Twig patterns + holistic joins
#include "join/twig_planner.h"     // Path-query -> twig compilation
#include "tokens/token_iterator.h" // TokenIterator / TokenSink
#include "tokens/token_stream.h"   // TokenStream storage mode
#include "xmark/generator.h"       // XMark-style data generator
#include "xmark/queries.h"         // Adapted XMark query set
#include "xml/document.h"          // Document / DocumentBuilder
#include "xml/node.h"              // Node handles
#include "xml/pull_parser.h"       // Streaming XML parser
#include "xml/serializer.h"        // XML serialization

#endif  // XQP_XQP_H_
